package sim

import (
	"reflect"
	"testing"
)

// TestSamplerBoundaries: the hook fires once per period boundary, catches
// up across event gaps, and observes state as of the boundary (events at
// the boundary instant run after the sample).
func TestSamplerBoundaries(t *testing.T) {
	e := New(1)
	var counter int
	type sample struct {
		at Time
		v  int
	}
	var got []sample
	e.SetSampler(10, func(at Time) { got = append(got, sample{at, counter}) })

	e.At(3, func() { counter = 1 })
	e.At(10, func() { counter = 2 }) // at the boundary: sampled value is pre-event
	e.At(25, func() { counter = 3 }) // crosses boundary 20
	e.At(77, func() { counter = 4 }) // gap: boundaries 30..70 catch up first
	e.Run()

	want := []sample{
		{10, 1}, // event at t=10 had not run yet
		{20, 2},
		{30, 3}, {40, 3}, {50, 3}, {60, 3}, {70, 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("samples = %v, want %v", got, want)
	}
}

// TestSamplerRunUntil: the final clock advance in RunUntil also catches
// the sampler up, so a quiescent tail still produces boundary samples.
func TestSamplerRunUntil(t *testing.T) {
	e := New(1)
	var got []Time
	e.SetSampler(10, func(at Time) { got = append(got, at) })
	e.At(5, func() {})
	e.RunUntil(35)
	want := []Time{10, 20, 30}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("samples at %v, want %v", got, want)
	}
	if e.Now() != 35 {
		t.Fatalf("Now() = %v, want 35", e.Now())
	}
}

// TestSamplerPreservesOrder: installing the hook must not change event
// execution order or PRNG draws — the determinism contract behind the
// figure bit-identity gates.
func TestSamplerPreservesOrder(t *testing.T) {
	run := func(sampled bool) (order []int, draws []uint64) {
		e := New(42)
		if sampled {
			e.SetSampler(7, func(Time) {})
		}
		// A burst of same-instant events plus staggered ones, each
		// drawing from the PRNG, plus nested scheduling.
		for i := 0; i < 20; i++ {
			i := i
			at := Time(5 * (i % 4))
			e.At(at, func() {
				order = append(order, i)
				draws = append(draws, e.Rand().Uint64())
				e.After(3, func() {
					order = append(order, 100+i)
					draws = append(draws, e.Rand().Uint64())
				})
			})
		}
		e.Run()
		return
	}
	o1, d1 := run(false)
	o2, d2 := run(true)
	if !reflect.DeepEqual(o1, o2) {
		t.Fatalf("event order changed with sampler installed:\noff=%v\non =%v", o1, o2)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("PRNG draws changed with sampler installed")
	}
}

// TestSamplerUninstall: nil fn or non-positive period removes the hook.
func TestSamplerUninstall(t *testing.T) {
	e := New(1)
	fired := 0
	e.SetSampler(10, func(Time) { fired++ })
	e.SetSampler(0, func(Time) { fired++ })
	e.At(50, func() {})
	e.Run()
	if fired != 0 {
		t.Fatalf("uninstalled sampler fired %d times", fired)
	}
	e.SetSampler(10, func(Time) { fired++ })
	e.SetSampler(10, nil)
	e.At(100, func() {})
	e.Run()
	if fired != 0 {
		t.Fatalf("nil-fn sampler fired %d times", fired)
	}
}

// TestZeroAllocSampler: steady-state firing with a sampler installed
// (appending into preallocated storage) allocates nothing, and the
// disabled path is untouched (covered by TestZeroAllocSteadyState).
func TestZeroAllocSampler(t *testing.T) {
	e := New(1)
	buf := make([]Time, 0, 1<<16)
	e.SetSampler(10, func(at Time) { buf = append(buf, at) })
	var cb Callback
	cb = func(arg any, u uint64) {
		if u < 200 {
			e.CallAfter(3, cb, nil, u+1)
		}
	}
	e.CallAfter(3, cb, nil, 0)
	// Warm the pool and ready queue.
	e.RunUntil(e.Now() + 60)
	allocs := testing.AllocsPerRun(50, func() {
		e.CallAfter(3, cb, nil, 0)
		e.RunUntil(e.Now() + 30)
	})
	if allocs != 0 {
		t.Fatalf("steady state with sampler allocates %.1f/run, want 0", allocs)
	}
}
