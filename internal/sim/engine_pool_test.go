package sim

import (
	"sort"
	"testing"
)

// TestTimerHandleSurvivesPooling checks that a Timer handle held across a
// fire and heavy pool reuse can never touch the event's next occupant:
// the generation counter must invalidate stale handles.
func TestTimerHandleSurvivesPooling(t *testing.T) {
	e := New(1)
	nop := func(any, uint64) {}

	fired := false
	tm := e.TimerAfter(Microsecond, func(any, uint64) { fired = true }, nil, 0)
	if !tm.Active() {
		t.Fatal("fresh timer not active")
	}
	e.Run()
	if !fired {
		t.Fatal("timer did not fire")
	}
	if tm.Active() {
		t.Fatal("timer still active after firing")
	}
	if e.CancelTimer(tm) {
		t.Fatal("CancelTimer succeeded on a fired timer")
	}

	// Recycle the pool hard so tm.ev's slot is reused many times.
	for i := 0; i < 256; i++ {
		e.CallAfter(Time(i), nop, nil, 0)
	}
	// The stale handle must not cancel whatever now occupies the event.
	if e.CancelTimer(tm) {
		t.Fatal("stale timer handle canceled a recycled event")
	}
	before := e.Pending()
	e.CancelTimer(tm)
	if e.Pending() != before {
		t.Fatal("stale CancelTimer changed pending count")
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("%d events lost or stuck after pool churn", e.Pending())
	}
}

// TestEventHandleSurvivesPooling checks that caller-owned *Event handles
// from At keep their Fired/Canceled/Done semantics indefinitely, even
// after the engine has churned through its internal pool many times.
func TestEventHandleSurvivesPooling(t *testing.T) {
	e := New(2)
	nop := func(any, uint64) {}

	evFired := e.At(Microsecond, func() {})
	evCanceled := e.At(2*Microsecond, func() {})
	e.Cancel(evCanceled)
	e.Run()

	for round := 0; round < 8; round++ {
		for i := 0; i < 128; i++ {
			e.CallAfter(Time(i%7), nop, nil, 0)
		}
		e.Run()
	}

	if !evFired.Fired() || evFired.Canceled() || !evFired.Done() {
		t.Fatalf("fired handle corrupted by pooling: Fired=%v Canceled=%v Done=%v",
			evFired.Fired(), evFired.Canceled(), evFired.Done())
	}
	if evCanceled.Fired() || !evCanceled.Canceled() || !evCanceled.Done() {
		t.Fatalf("canceled handle corrupted by pooling: Fired=%v Canceled=%v Done=%v",
			evCanceled.Fired(), evCanceled.Canceled(), evCanceled.Done())
	}
}

// TestCancelChurnCompaction regression-tests the lazy-cancel compaction:
// a workload that schedules and cancels without ever letting the clock
// advance must not accumulate dead entries (this was quadratic before
// compaction existed), and the survivors must still fire in FIFO order.
func TestCancelChurnCompaction(t *testing.T) {
	e := New(5)
	var got []int
	var tms [64]Timer
	const churn = 100_000
	for i := 0; i < churn; i++ {
		slot := i % len(tms)
		if tms[slot].Active() {
			e.CancelTimer(tms[slot])
		}
		tms[slot] = e.TimerAfter(Time(1+i%512), func(_ any, u uint64) {
			got = append(got, int(u))
		}, nil, uint64(i))
	}
	if n := len(e.ready); n > 1024 {
		t.Fatalf("ready queue grew to %d entries under cancel churn, compaction failed", n)
	}
	e.Run()
	// The survivors are the final len(tms) schedules; they must fire in
	// (at, schedule order) — i.e. time-sorted, ties by id.
	want := make([]int, 0, len(tms))
	for i := churn - len(tms); i < churn; i++ {
		want = append(want, i)
	}
	sort.SliceStable(want, func(a, b int) bool {
		return 1+want[a]%512 < 1+want[b]%512
	})
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want the %d surviving timers", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("survivor order diverges at %d: got %d want %d", i, got[i], want[i])
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events stuck after churn drain", e.Pending())
	}
}

// TestZeroAllocSteadyState gates the tentpole's allocation claim in the
// regular test suite (so `make check` enforces it): closure-free
// scheduling through a warmed pool must not allocate at all, mirroring
// the compiled-policy gate in internal/ebpf/jit_test.go.
func TestZeroAllocSteadyState(t *testing.T) {
	e := New(3)
	nop := func(any, uint64) {}

	// Warm the free list and the ready slice.
	for i := 0; i < 256; i++ {
		e.CallAfter(Time(i%64), nop, nil, 0)
	}
	e.Run()

	i := 0
	if avg := testing.AllocsPerRun(500, func() {
		e.CallAfter(Time(i%64), nop, nil, uint64(i))
		i++
		if e.Pending() > 128 {
			e.Run()
		}
	}); avg != 0 {
		t.Fatalf("pooled schedule+fire allocates %v allocs/op, want 0", avg)
	}
}

// TestZeroAllocTicker gates the re-arm path: a running ticker must not
// allocate per period.
func TestZeroAllocTicker(t *testing.T) {
	e := New(4)
	n := 0
	tk := e.NewTicker(Microsecond, func() { n++ })
	e.RunUntil(16 * Microsecond) // warm
	if avg := testing.AllocsPerRun(100, func() {
		e.RunUntil(e.Now() + Microsecond)
	}); avg != 0 {
		t.Fatalf("ticker re-arm allocates %v allocs/op, want 0", avg)
	}
	tk.Stop()
	if n == 0 {
		t.Fatal("ticker never ticked")
	}
}

// Engine microbenchmarks for the timer-wheel core. `make bench-engine`
// runs exactly these.

// BenchmarkEngineSteadyState is the closure-free analogue of
// BenchmarkScheduleAndFire: schedule near-future work, drain in batches.
func BenchmarkEngineSteadyState(b *testing.B) {
	e := New(42)
	nop := func(any, uint64) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.CallAfter(Time(i%64), nop, nil, uint64(i))
		if e.Pending() > 1024 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEngineCancelHeavy schedules pooled timers and cancels most of
// them before they fire — the RFS/slice-timer shape in the kernel model.
func BenchmarkEngineCancelHeavy(b *testing.B) {
	e := New(42)
	nop := func(any, uint64) {}
	var tms [64]Timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % len(tms)
		if tms[slot].Active() {
			e.CancelTimer(tms[slot])
		}
		tms[slot] = e.TimerAfter(Time(1+i%512), nop, nil, uint64(i))
		if e.Pending() > 1024 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEngineTickerChurn measures the periodic re-arm path (CFS tick,
// agent polling): one ticker advanced through b.N periods.
func BenchmarkEngineTickerChurn(b *testing.B) {
	e := New(42)
	n := 0
	tk := e.NewTicker(Microsecond, func() { n++ })
	b.ReportAllocs()
	b.ResetTimer()
	e.RunUntil(Time(b.N) * Microsecond)
	b.StopTimer()
	tk.Stop()
	if n < b.N {
		b.Fatalf("ticker fired %d times, want >= %d", n, b.N)
	}
}
