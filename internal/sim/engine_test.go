package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events not FIFO at %d: %v", i, got[:i+1])
		}
	}
}

func TestAfterAccumulates(t *testing.T) {
	e := New(1)
	var times []Time
	e.At(100, func() {
		e.After(50, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 1 || times[0] != 150 {
		t.Fatalf("After misfired: %v", times)
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("event does not report canceled")
	}
	// Double-cancel and cancel-after-run must be no-ops.
	e.Cancel(ev)
	ev2 := e.At(20, func() {})
	e.Run()
	e.Cancel(ev2)
}

func TestCancelFromInsideEvent(t *testing.T) {
	e := New(1)
	fired := false
	var victim *Event
	victim = e.At(10, func() { fired = true })
	e.At(5, func() { e.Cancel(victim) })
	e.Run()
	if fired {
		t.Fatal("event canceled at t=5 still fired at t=10")
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	var got []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.RunUntil(25)
	if len(got) != 2 || e.Now() != 25 {
		t.Fatalf("RunUntil(25): got %v now %v", got, e.Now())
	}
	e.RunUntil(40)
	if len(got) != 4 || e.Now() != 40 {
		t.Fatalf("RunUntil(40): got %v now %v", got, e.Now())
	}
}

func TestRunUntilRunsEventsScheduledAtBoundary(t *testing.T) {
	e := New(1)
	n := 0
	e.At(10, func() {
		n++
		e.At(10, func() { n++ })
	})
	e.RunUntil(10)
	if n != 2 {
		t.Fatalf("boundary-time chained event did not run: n=%d", n)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New(1)
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestStop(t *testing.T) {
	e := New(1)
	n := 0
	e.At(1, func() { n++; e.Stop() })
	e.At(2, func() { n++ })
	e.Run()
	if n != 1 {
		t.Fatalf("Stop did not halt run loop: n=%d", n)
	}
	e.Run() // resumes
	if n != 2 {
		t.Fatalf("resumed run did not execute remaining event: n=%d", n)
	}
}

func TestTicker(t *testing.T) {
	e := New(1)
	var ticks []Time
	var tk *Ticker
	tk = e.NewTicker(100, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 5 {
			tk.Stop()
		}
	})
	e.Run()
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5", len(ticks))
	}
	for i, at := range ticks {
		if want := Time(100 * (i + 1)); at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		e := New(42)
		var out []uint64
		for i := 0; i < 50; i++ {
			d := Time(e.Rand().Int64N(1000)) + 1
			e.After(d, func() { out = append(out, e.Rand().Uint64()) })
		}
		e.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic event count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic rng stream at %d", i)
		}
	}
}

// Property: for any batch of events with arbitrary (non-negative) offsets,
// the engine fires them in nondecreasing time order and finishes with the
// clock at the max timestamp.
func TestPropertyMonotoneClock(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := New(7)
		var fireTimes []Time
		var max Time
		for _, off := range offsets {
			at := Time(off)
			if at > max {
				max = at
			}
			e.At(at, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return len(offsets) == 0 || e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFiredVsCanceled pins the Event lifecycle split: an event that ran
// normally is Fired (not Canceled), an event that was canceled is Canceled
// (not Fired), and Done covers both. Hot-swap teardown relies on this to
// tell revoked work from completed work.
func TestFiredVsCanceled(t *testing.T) {
	e := New(1)
	ran := e.At(10, func() {})
	killed := e.At(20, func() { t.Fatal("canceled event fired") })
	pending := e.At(30, func() {})
	e.Cancel(killed)

	if ran.Fired() || ran.Canceled() || ran.Done() {
		t.Fatal("unfired event reports fired/canceled/done")
	}
	e.RunUntil(15)
	if !ran.Fired() || !ran.Done() {
		t.Fatal("fired event does not report Fired/Done")
	}
	if ran.Canceled() {
		t.Fatal("fired event reports Canceled")
	}
	if !killed.Canceled() || !killed.Done() || killed.Fired() {
		t.Fatal("canceled event lifecycle wrong")
	}
	// Cancel after firing must not flip a fired event to canceled.
	e.Cancel(ran)
	if ran.Canceled() || !ran.Fired() {
		t.Fatal("cancel-after-fire corrupted lifecycle")
	}
	e.Cancel(pending)
	e.Run()
}

func TestMicrosAndString(t *testing.T) {
	if Microsecond.Micros() != 1 {
		t.Fatal("Micros conversion wrong")
	}
	if s := (1500 * Nanosecond).String(); s != "1.500us" {
		t.Fatalf("String = %q", s)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	e := New(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%64), fn)
		if e.Pending() > 1024 {
			e.Run()
		}
	}
	e.Run()
}
