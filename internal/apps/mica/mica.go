// Package mica implements the MICA-like partitioned key-value store of
// §5.4: data partitioned across cores (EREW — each partition is owned and
// touched by exactly one thread), keys steered to their "home" thread by
// key hash. Three request-steering backends reproduce the paper's
// comparison:
//
//   - ModeSWRedirect ("SW Redirect, original MICA"): RSS spreads packets
//     across threads; the receiving thread parses each request and, for
//     foreign keys, forwards it to the home thread over an inter-core ring
//     (up to two data movements).
//   - ModeSyrupSW ("Syrup SW"): the mica_hash policy at the kernel AF_XDP
//     hook steers each packet directly to the home thread's AF_XDP socket
//     (one movement).
//   - ModeSyrupHW ("Syrup HW"): the same policy runs on the NIC and picks
//     the home thread's RX queue, so the packet lands on the right core's
//     buddy from the start (zero movements).
package mica

import (
	"fmt"
	"hash/fnv"
	"sync"

	"syrup/internal/kernel"
	"syrup/internal/netstack"
	"syrup/internal/nic"
	"syrup/internal/policy"
	"syrup/internal/sim"
)

// Mode selects the steering backend.
type Mode int

// Steering modes.
const (
	ModeSWRedirect Mode = iota
	ModeSyrupSW
	ModeSyrupHW
)

func (m Mode) String() string {
	switch m {
	case ModeSWRedirect:
		return "SW Redirect (Original MICA)"
	case ModeSyrupSW:
		return "Syrup SW (Kernel)"
	case ModeSyrupHW:
		return "Syrup HW (NIC)"
	}
	return "?"
}

// Partition is one thread's exclusive shard.
type Partition struct {
	mu   sync.Mutex
	data map[uint64]string

	Gets, Puts, Misses uint64
}

func newPartition() *Partition { return &Partition{data: make(map[uint64]string)} }

// KeyHash is the client-side hash MICA clients compute and embed in the
// request header.
func KeyHash(key uint64) uint32 {
	h := fnv.New32a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(key >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum32()
}

// Config describes a MICA deployment.
type Config struct {
	Port       uint16
	App        uint32
	NumThreads int
	Mode       Mode

	// Cost model (defaults from DESIGN.md calibration).
	PollCost    sim.Time // per-request rx/poll cost (0.25 µs)
	OpGetCost   sim.Time // GET processing incl. tx (2.1 µs)
	OpPutCost   sim.Time // PUT processing incl. tx (2.4 µs)
	ParseCost   sim.Time // request parse on the wrong core (0.6 µs)
	EnqueueCost sim.Time // inter-core ring enqueue (0.65 µs)
	DequeueCost sim.Time // inter-core ring dequeue (0.35 µs)
	CrossCost   sim.Time // cache-line transfer when data crossed cores (0.45 µs)

	RingCap int // inter-core ring capacity (4096)
	XSKCap  int // AF_XDP socket rx ring capacity (2048)

	OnComplete func(reqID uint64, finish sim.Time)
	KeySpace   int
}

func (c *Config) fill() {
	def := func(v *sim.Time, d sim.Time) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.PollCost, 250)
	def(&c.OpGetCost, 2100)
	def(&c.OpPutCost, 2400)
	def(&c.ParseCost, 600)
	def(&c.EnqueueCost, 650)
	def(&c.DequeueCost, 350)
	def(&c.CrossCost, 450)
	if c.RingCap == 0 {
		c.RingCap = 4096
	}
	if c.XSKCap == 0 {
		c.XSKCap = 2048
	}
	if c.KeySpace == 0 {
		c.KeySpace = 1 << 20
	}
}

// Server is the MICA server: NumThreads pinned threads, one partition
// each, plus mode-specific sockets and rings.
type Server struct {
	cfg        Config
	eng        *sim.Engine
	partitions []*Partition
	threads    []*kernel.Thread

	// xsks[i] lists thread i's AF_XDP sockets (8 per thread in SW mode —
	// one per queue; 1 in HW/redirect modes).
	xsks [][]*netstack.Socket
	// rings[i] is thread i's inbound inter-core ring (SW-redirect mode).
	rings []*netstack.Socket

	// Stats.
	Forwarded uint64 // requests that crossed the ring
	Local     uint64 // requests served by their receiving thread
}

// NewServer builds the server and registers its AF_XDP sockets in the
// stack's executor tables. Threads are pinned 1:1 to cores 0..N-1 (MICA's
// deployment model).
func NewServer(eng *sim.Engine, m *kernel.Machine, stack *netstack.Stack, cfg Config) *Server {
	cfg.fill()
	if cfg.NumThreads <= 0 || cfg.NumThreads > m.NumCPUs() {
		panic("mica: NumThreads must be in 1..NumCPUs")
	}
	s := &Server{cfg: cfg, eng: eng}
	n := cfg.NumThreads
	for i := 0; i < n; i++ {
		s.partitions = append(s.partitions, newPartition())
	}

	// Socket topology per mode (paper §5.4):
	switch cfg.Mode {
	case ModeSyrupSW:
		// Thread t gets one socket per RX queue; the executor table for
		// each queue is indexed by thread, so the mica_hash verdict (home
		// thread) works on every queue.
		for t := 0; t < n; t++ {
			var socks []*netstack.Socket
			for q := 0; q < n; q++ {
				sock := netstack.NewSocket(cfg.Port, cfg.App, cfg.XSKCap, fmt.Sprintf("mica-t%d-q%d", t, q))
				socks = append(socks, sock)
			}
			s.xsks = append(s.xsks, socks)
		}
		// Registration order: queue-major so index within a queue's table
		// equals the thread id.
		for q := 0; q < n; q++ {
			for t := 0; t < n; t++ {
				if idx := stack.RegisterXSK(cfg.Port, q, s.xsks[t][q]); idx != t {
					panic("mica: xsk executor index mismatch")
				}
			}
		}
	case ModeSyrupHW, ModeSWRedirect:
		// One socket per thread, bound to the thread's own queue.
		for t := 0; t < n; t++ {
			sock := netstack.NewSocket(cfg.Port, cfg.App, cfg.XSKCap, fmt.Sprintf("mica-t%d", t))
			s.xsks = append(s.xsks, []*netstack.Socket{sock})
			if idx := stack.RegisterXSK(cfg.Port, t, sock); idx != 0 {
				panic("mica: xsk executor index mismatch")
			}
		}
	}
	if cfg.Mode == ModeSWRedirect {
		for t := 0; t < n; t++ {
			s.rings = append(s.rings, netstack.NewSocket(cfg.Port, cfg.App, cfg.RingCap, fmt.Sprintf("mica-ring%d", t)))
		}
	}

	for i := 0; i < n; i++ {
		i := i
		th := m.NewThread(fmt.Sprintf("mica-%d", i), cfg.App, 1<<uint(i), func(th *kernel.Thread) {
			s.workerLoop(th, i)
		})
		s.threads = append(s.threads, th)
	}
	return s
}

// Start wakes all worker threads.
func (s *Server) Start() {
	for _, th := range s.threads {
		th.Wake()
	}
}

// Threads exposes the worker threads.
func (s *Server) Threads() []*kernel.Thread { return s.threads }

// homeOf maps a key hash to its home thread.
func (s *Server) homeOf(keyHash uint32) int { return int(keyHash) % s.cfg.NumThreads }

// workerLoop polls the thread's sockets (and ring, in redirect mode) and
// serves requests.
func (s *Server) workerLoop(th *kernel.Thread, me int) {
	var loop func()
	sources := make([]*netstack.Socket, 0, len(s.xsks[me])+1)
	if s.rings != nil {
		sources = append(sources, s.rings[me]) // ring first: finish in-flight work
	}
	sources = append(sources, s.xsks[me]...)
	next := 0
	loop = func() {
		var pkt *nic.Packet
		var fromRing bool
		for i := 0; i < len(sources); i++ {
			src := sources[(next+i)%len(sources)]
			if p := src.TryRecv(); p != nil {
				pkt = p
				fromRing = s.rings != nil && src == s.rings[me]
				next = (next + i + 1) % len(sources)
				break
			}
		}
		if pkt == nil {
			for _, src := range sources {
				src.SetWaiter(func() { th.Wake() })
			}
			th.Block(loop)
			return
		}
		s.serve(th, me, pkt, fromRing, loop)
	}
	loop()
}

func (s *Server) serve(th *kernel.Thread, me int, pkt *nic.Packet, fromRing bool, loop func()) {
	reqType, _, keyHash, reqID, ok := policy.DecodeHeader(pkt.Payload)
	if !ok {
		loop()
		return
	}
	home := s.homeOf(keyHash)

	// SW-redirect mode: a packet from the NIC may belong to another
	// thread's partition; parse and forward it over the ring.
	if s.cfg.Mode == ModeSWRedirect && !fromRing && home != me {
		s.Forwarded++
		cost := s.cfg.PollCost + s.cfg.ParseCost + s.cfg.EnqueueCost
		th.Exec(cost, func() {
			s.rings[home].Enqueue(pkt) // ring overflow drops, like DPDK
			loop()
		})
		return
	}

	// Serving path cost: rx + (movement penalties) + the operation.
	cost := s.cfg.PollCost
	if fromRing {
		cost += s.cfg.DequeueCost + s.cfg.CrossCost
	} else if s.cfg.Mode == ModeSyrupSW && int(pkt.Queue) != me {
		// The packet's softirq/XSK work happened on a foreign queue's
		// buddy; its lines arrive cold.
		cost += s.cfg.CrossCost
	} else {
		s.Local++
	}
	op := s.cfg.OpGetCost
	if reqType == policy.ReqPUT {
		op = s.cfg.OpPutCost
	}
	cost += op

	th.Exec(cost, func() {
		// The real partition operation (EREW: only this thread touches
		// partition `home`; redirect mode guarantees home == me here).
		p := s.partitions[home]
		key := uint64(keyHash) % uint64(s.cfg.KeySpace)
		p.mu.Lock()
		switch reqType {
		case policy.ReqPUT:
			p.data[key] = "v"
			p.Puts++
		default:
			if _, ok := p.data[key]; !ok {
				p.Misses++
			}
			p.Gets++
		}
		p.mu.Unlock()
		if s.cfg.OnComplete != nil {
			s.cfg.OnComplete(reqID, s.eng.Now())
		}
		loop()
	})
}

// Partition exposes partition i (tests).
func (s *Server) Partition(i int) *Partition { return s.partitions[i] }
