// Package mica implements the MICA-like partitioned key-value store of
// §5.4: data partitioned across cores (EREW — each partition is owned and
// touched by exactly one thread), keys steered to their "home" thread by
// key hash. Three request-steering backends reproduce the paper's
// comparison:
//
//   - ModeSWRedirect ("SW Redirect, original MICA"): RSS spreads packets
//     across threads; the receiving thread parses each request and, for
//     foreign keys, forwards it to the home thread over an inter-core ring
//     (up to two data movements).
//   - ModeSyrupSW ("Syrup SW"): the mica_hash policy at the kernel AF_XDP
//     hook steers each packet directly to the home thread's AF_XDP socket
//     (one movement).
//   - ModeSyrupHW ("Syrup HW"): the same policy runs on the NIC and picks
//     the home thread's RX queue, so the packet lands on the right core's
//     buddy from the start (zero movements).
package mica

import (
	"fmt"

	"syrup/internal/kernel"
	"syrup/internal/netstack"
	"syrup/internal/nic"
	"syrup/internal/policy"
	"syrup/internal/sim"
)

// Mode selects the steering backend.
type Mode int

// Steering modes.
const (
	ModeSWRedirect Mode = iota
	ModeSyrupSW
	ModeSyrupHW
)

func (m Mode) String() string {
	switch m {
	case ModeSWRedirect:
		return "SW Redirect (Original MICA)"
	case ModeSyrupSW:
		return "Syrup SW (Kernel)"
	case ModeSyrupHW:
		return "Syrup HW (NIC)"
	}
	return "?"
}

// Partition is one thread's exclusive shard. Values in the simulation are
// synthetic, so the store reduces to a presence bitset over the hashed key
// space; EREW ownership (only the home thread ever touches a partition)
// means no lock is needed.
type Partition struct {
	present []uint64

	Gets, Puts, Misses uint64
}

func newPartition(keySpace int) *Partition {
	return &Partition{present: make([]uint64, (keySpace+63)/64)}
}

// Has reports whether key is present (tests).
func (p *Partition) Has(key uint64) bool {
	return p.present[key>>6]&(1<<(key&63)) != 0
}

// KeyHash is the client-side hash MICA clients compute and embed in the
// request header: FNV-1a over the key's 8 little-endian bytes.
func KeyHash(key uint64) uint32 {
	h := uint32(2166136261)
	for i := 0; i < 8; i++ {
		h ^= uint32(key>>(8*i)) & 0xff
		h *= 16777619
	}
	return h
}

// Config describes a MICA deployment.
type Config struct {
	Port       uint16
	App        uint32
	NumThreads int
	Mode       Mode

	// Shard/NumShards place this server in a keyspace partitioned across
	// a cluster: it owns exactly the keys with policy.KeyShardOf(hash,
	// NumShards) == Shard, and KeySpace is this shard's share (total
	// keyspace / NumShards). A request for a foreign key — mis-steered by
	// the cluster layer — is counted in Foreign and dropped without
	// touching any partition, preserving EREW ownership across hosts just
	// as it holds across cores. NumShards <= 1 means an unsharded
	// (single-host) deployment.
	Shard     int
	NumShards int

	// Cost model (defaults from DESIGN.md calibration).
	PollCost    sim.Time // per-request rx/poll cost (0.25 µs)
	OpGetCost   sim.Time // GET processing incl. tx (2.1 µs)
	OpPutCost   sim.Time // PUT processing incl. tx (2.4 µs)
	ParseCost   sim.Time // request parse on the wrong core (0.6 µs)
	EnqueueCost sim.Time // inter-core ring enqueue (0.65 µs)
	DequeueCost sim.Time // inter-core ring dequeue (0.35 µs)
	CrossCost   sim.Time // cache-line transfer when data crossed cores (0.45 µs)

	RingCap int // inter-core ring capacity (4096)
	XSKCap  int // AF_XDP socket rx ring capacity (2048)

	OnComplete func(reqID uint64, finish sim.Time)
	KeySpace   int
}

func (c *Config) fill() {
	def := func(v *sim.Time, d sim.Time) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.PollCost, 250)
	def(&c.OpGetCost, 2100)
	def(&c.OpPutCost, 2400)
	def(&c.ParseCost, 600)
	def(&c.EnqueueCost, 650)
	def(&c.DequeueCost, 350)
	def(&c.CrossCost, 450)
	if c.RingCap == 0 {
		c.RingCap = 4096
	}
	if c.XSKCap == 0 {
		c.XSKCap = 2048
	}
	if c.KeySpace == 0 {
		c.KeySpace = 1 << 20
		if c.NumShards > 1 {
			c.KeySpace /= c.NumShards
		}
	}
	if c.NumShards > 1 && (c.Shard < 0 || c.Shard >= c.NumShards) {
		panic(fmt.Sprintf("mica: Shard %d outside [0,%d)", c.Shard, c.NumShards))
	}
}

// Server is the MICA server: NumThreads pinned threads, one partition
// each, plus mode-specific sockets and rings.
type Server struct {
	cfg        Config
	eng        *sim.Engine
	partitions []*Partition
	threads    []*kernel.Thread

	// xsks[i] lists thread i's AF_XDP sockets (8 per thread in SW mode —
	// one per queue; 1 in HW/redirect modes).
	xsks [][]*netstack.Socket
	// rings[i] is thread i's inbound inter-core ring (SW-redirect mode).
	rings []*netstack.Socket

	// Stats.
	Forwarded uint64 // requests that crossed the ring
	Local     uint64 // requests served by their receiving thread
	Foreign   uint64 // requests for keys another cluster shard owns (dropped)
}

// NewServer builds the server and registers its AF_XDP sockets in the
// stack's executor tables. Threads are pinned 1:1 to cores 0..N-1 (MICA's
// deployment model).
func NewServer(eng *sim.Engine, m *kernel.Machine, stack *netstack.Stack, cfg Config) *Server {
	cfg.fill()
	if cfg.NumThreads <= 0 || cfg.NumThreads > m.NumCPUs() {
		panic("mica: NumThreads must be in 1..NumCPUs")
	}
	s := &Server{cfg: cfg, eng: eng}
	n := cfg.NumThreads
	for i := 0; i < n; i++ {
		s.partitions = append(s.partitions, newPartition(cfg.KeySpace))
	}

	// Socket topology per mode (paper §5.4):
	switch cfg.Mode {
	case ModeSyrupSW:
		// Thread t gets one socket per RX queue; the executor table for
		// each queue is indexed by thread, so the mica_hash verdict (home
		// thread) works on every queue.
		for t := 0; t < n; t++ {
			var socks []*netstack.Socket
			for q := 0; q < n; q++ {
				sock := netstack.NewSocket(cfg.Port, cfg.App, cfg.XSKCap, fmt.Sprintf("mica-t%d-q%d", t, q))
				socks = append(socks, sock)
			}
			s.xsks = append(s.xsks, socks)
		}
		// Registration order: queue-major so index within a queue's table
		// equals the thread id.
		for q := 0; q < n; q++ {
			for t := 0; t < n; t++ {
				if idx := stack.RegisterXSK(cfg.Port, q, s.xsks[t][q]); idx != t {
					panic("mica: xsk executor index mismatch")
				}
			}
		}
	case ModeSyrupHW, ModeSWRedirect:
		// One socket per thread, bound to the thread's own queue.
		for t := 0; t < n; t++ {
			sock := netstack.NewSocket(cfg.Port, cfg.App, cfg.XSKCap, fmt.Sprintf("mica-t%d", t))
			s.xsks = append(s.xsks, []*netstack.Socket{sock})
			if idx := stack.RegisterXSK(cfg.Port, t, sock); idx != 0 {
				panic("mica: xsk executor index mismatch")
			}
		}
	}
	if cfg.Mode == ModeSWRedirect {
		for t := 0; t < n; t++ {
			s.rings = append(s.rings, netstack.NewSocket(cfg.Port, cfg.App, cfg.RingCap, fmt.Sprintf("mica-ring%d", t)))
		}
	}

	for i := 0; i < n; i++ {
		i := i
		th := m.NewThread(fmt.Sprintf("mica-%d", i), cfg.App, 1<<uint(i), func(th *kernel.Thread) {
			s.workerLoop(th, i)
		})
		s.threads = append(s.threads, th)
	}
	return s
}

// Start wakes all worker threads.
func (s *Server) Start() {
	for _, th := range s.threads {
		th.Wake()
	}
}

// Threads exposes the worker threads.
func (s *Server) Threads() []*kernel.Thread { return s.threads }

// homeOf maps a key hash to its home thread.
func (s *Server) homeOf(keyHash uint32) int { return int(keyHash) % s.cfg.NumThreads }

// worker is one thread's poll state plus its preallocated continuations:
// the serve hot path parks per-request state here and hands th.Exec a
// long-lived func, so steady-state request service allocates nothing.
type worker struct {
	s       *Server
	th      *kernel.Thread
	me      int
	sources []*netstack.Socket
	next    int

	loop func()
	wake func()

	// In-flight request, consumed by opCont / fwdCont.
	pkt     *nic.Packet
	home    int
	keyHash uint32
	reqType uint64
	reqID   uint64

	opCont  func()
	fwdCont func()
}

// workerLoop polls the thread's sockets (and ring, in redirect mode) and
// serves requests.
func (s *Server) workerLoop(th *kernel.Thread, me int) {
	w := &worker{s: s, th: th, me: me}
	w.sources = make([]*netstack.Socket, 0, len(s.xsks[me])+1)
	if s.rings != nil {
		w.sources = append(w.sources, s.rings[me]) // ring first: finish in-flight work
	}
	w.sources = append(w.sources, s.xsks[me]...)
	w.wake = func() { th.Wake() }
	w.opCont = w.finishOp
	w.fwdCont = w.finishForward
	w.loop = func() {
		var pkt *nic.Packet
		var fromRing bool
		for i := 0; i < len(w.sources); i++ {
			src := w.sources[(w.next+i)%len(w.sources)]
			if p := src.TryRecv(); p != nil {
				pkt = p
				fromRing = s.rings != nil && src == s.rings[me]
				w.next = (w.next + i + 1) % len(w.sources)
				break
			}
		}
		if pkt == nil {
			for _, src := range w.sources {
				src.SetWaiter(w.wake)
			}
			th.Block(w.loop)
			return
		}
		s.serve(w, pkt, fromRing)
	}
	w.loop()
}

func (s *Server) serve(w *worker, pkt *nic.Packet, fromRing bool) {
	reqType, _, keyHash, reqID, ok := policy.DecodeHeader(pkt.Payload)
	if !ok {
		pkt.Free()
		w.loop()
		return
	}
	if s.cfg.NumShards > 1 && policy.KeyShardOf(keyHash, s.cfg.NumShards) != s.cfg.Shard {
		// Mis-steered by the cluster layer: this host does not own the
		// key. Dropping (never completing) charges the miss to whoever
		// steered the flow, and keeps cross-host EREW intact.
		s.Foreign++
		pkt.Free()
		w.loop()
		return
	}
	home := s.homeOf(keyHash)

	// SW-redirect mode: a packet from the NIC may belong to another
	// thread's partition; parse and forward it over the ring.
	if s.cfg.Mode == ModeSWRedirect && !fromRing && home != w.me {
		s.Forwarded++
		w.pkt, w.home = pkt, home
		w.th.Exec(s.cfg.PollCost+s.cfg.ParseCost+s.cfg.EnqueueCost, w.fwdCont)
		return
	}

	// Serving path cost: rx + (movement penalties) + the operation.
	cost := s.cfg.PollCost
	if fromRing {
		cost += s.cfg.DequeueCost + s.cfg.CrossCost
	} else if s.cfg.Mode == ModeSyrupSW && int(pkt.Queue) != w.me {
		// The packet's softirq/XSK work happened on a foreign queue's
		// buddy; its lines arrive cold.
		cost += s.cfg.CrossCost
	} else {
		s.Local++
	}
	op := s.cfg.OpGetCost
	if reqType == policy.ReqPUT {
		op = s.cfg.OpPutCost
	}
	cost += op

	w.pkt, w.home, w.keyHash, w.reqType, w.reqID = pkt, home, keyHash, reqType, reqID
	w.th.Exec(cost, w.opCont)
}

// finishForward pushes the parked packet onto its home thread's ring.
func (w *worker) finishForward() {
	pkt := w.pkt
	w.pkt = nil
	if !w.s.rings[w.home].Enqueue(pkt) {
		pkt.Free() // ring overflow drops, like DPDK
	}
	w.loop()
}

// finishOp applies the parked request to its partition and completes it.
func (w *worker) finishOp() {
	s := w.s
	// The real partition operation (EREW: only this thread touches
	// partition `home`; redirect mode guarantees home == me here).
	p := s.partitions[w.home]
	key := uint64(w.keyHash) % uint64(s.cfg.KeySpace)
	word, bit := key>>6, uint64(1)<<(key&63)
	switch w.reqType {
	case policy.ReqPUT:
		p.present[word] |= bit
		p.Puts++
	default:
		if p.present[word]&bit == 0 {
			p.Misses++
		}
		p.Gets++
	}
	pkt := w.pkt
	w.pkt = nil
	if s.cfg.OnComplete != nil {
		s.cfg.OnComplete(w.reqID, s.eng.Now())
	}
	pkt.Free()
	w.loop()
}

// Partition exposes partition i (tests).
func (s *Server) Partition(i int) *Partition { return s.partitions[i] }
