package mica

import (
	"testing"

	"syrup/internal/ebpf"
	"syrup/internal/kernel"
	"syrup/internal/netstack"
	"syrup/internal/nic"
	"syrup/internal/policy"
	"syrup/internal/sim"
)

type fixture struct {
	eng   *sim.Engine
	m     *kernel.Machine
	dev   *nic.NIC
	stack *netstack.Stack
	srv   *Server
	done  int
}

func newFixture(t *testing.T, threads int, mode Mode) *fixture {
	t.Helper()
	eng := sim.New(1)
	m := kernel.New(eng, kernel.Config{NumCPUs: threads})
	dev, stack := netstack.Wire(eng, nic.Config{Queues: threads}, netstack.Config{})
	f := &fixture{eng: eng, m: m, dev: dev, stack: stack}
	f.srv = NewServer(eng, m, stack, Config{
		Port: 9000, App: 1, NumThreads: threads, Mode: mode,
		OnComplete: func(uint64, sim.Time) { f.done++ },
	})

	// Wire the steering the experiment harness normally deploys through
	// syrupd: the mica_hash policy at the relevant hook.
	prog, _, err := policy.Load(policy.NameMicaHash, map[string]int64{"NUM_EXECUTORS": int64(threads)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	switch mode {
	case ModeSyrupSW:
		stack.SetXDP(netstack.XDPGeneric, prog)
	case ModeSyrupHW:
		dev.SetOffloadProgram(prog)
		// Kernel side: trivial redirect into the queue's only socket.
		trivial, _, err := ebpf.AssembleAndLoad("to-xsk", "r0 = 0\nexit\n", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		stack.SetXDP(netstack.XDPGeneric, trivial)
	case ModeSWRedirect:
		// RSS decides the queue; queue's only socket gets the packet.
		trivial, _, err := ebpf.AssembleAndLoad("to-xsk", "r0 = 0\nexit\n", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		stack.SetXDP(netstack.XDPGeneric, trivial)
	}
	f.srv.Start()
	eng.Run()
	return f
}

func (f *fixture) inject(n int) {
	for i := 0; i < n; i++ {
		key := uint64(i)
		pkt := &nic.Packet{
			ID: uint64(i), SrcIP: 1, DstIP: 2,
			SrcPort: uint16(1000 + i%97), DstPort: 9000,
			Payload: policy.EncodeHeader(policy.ReqGET, 0, KeyHash(key), uint64(i)),
		}
		f.dev.Receive(pkt)
	}
	f.eng.Run()
}

func TestKeyHashDeterministic(t *testing.T) {
	if KeyHash(42) != KeyHash(42) {
		t.Fatal("unstable key hash")
	}
	if KeyHash(1) == KeyHash(2) {
		t.Fatal("suspicious collision")
	}
}

func TestModeSyrupSWRoutesToHomePartition(t *testing.T) {
	f := newFixture(t, 4, ModeSyrupSW)
	f.inject(200)
	if f.done != 200 {
		t.Fatalf("completed %d/200", f.done)
	}
	// EREW: every key must have been served by its home partition.
	var total uint64
	for i := 0; i < 4; i++ {
		total += f.srv.Partition(i).Gets
	}
	if total != 200 {
		t.Fatalf("partition gets = %d", total)
	}
	// SW mode still incurs cross-queue movement but never the ring.
	if f.srv.Forwarded != 0 {
		t.Fatalf("SW mode used the ring %d times", f.srv.Forwarded)
	}
}

func TestModeSWRedirectForwardsForeignKeys(t *testing.T) {
	f := newFixture(t, 4, ModeSWRedirect)
	f.inject(400)
	if f.done != 400 {
		t.Fatalf("completed %d/400", f.done)
	}
	if f.srv.Forwarded == 0 {
		t.Fatal("no requests crossed the inter-core ring; redirect mode inert")
	}
	// With uniform keys over 4 threads, ~3/4 should be forwarded.
	frac := float64(f.srv.Forwarded) / 400
	if frac < 0.5 || frac > 0.95 {
		t.Fatalf("forwarded fraction %.2f implausible", frac)
	}
}

func TestModeSyrupHWAllLocal(t *testing.T) {
	f := newFixture(t, 4, ModeSyrupHW)
	f.inject(200)
	if f.done != 200 {
		t.Fatalf("completed %d/200", f.done)
	}
	if f.srv.Forwarded != 0 {
		t.Fatalf("HW mode forwarded %d requests", f.srv.Forwarded)
	}
	if f.srv.Local != 200 {
		t.Fatalf("local = %d, want 200 (NIC steering should land every packet home)", f.srv.Local)
	}
}

func TestModesCostOrdering(t *testing.T) {
	// Same offered batch; the virtual finish time must order
	// HW < SW < redirect (§5.4's headline).
	finish := map[Mode]sim.Time{}
	for _, mode := range []Mode{ModeSWRedirect, ModeSyrupSW, ModeSyrupHW} {
		f := newFixture(t, 4, mode)
		f.inject(2000)
		if f.done != 2000 {
			t.Fatalf("%v completed %d", mode, f.done)
		}
		finish[mode] = f.eng.Now()
	}
	if !(finish[ModeSyrupHW] < finish[ModeSyrupSW] && finish[ModeSyrupSW] < finish[ModeSWRedirect]) {
		t.Fatalf("cost ordering wrong: HW=%v SW=%v redirect=%v",
			finish[ModeSyrupHW], finish[ModeSyrupSW], finish[ModeSWRedirect])
	}
}

func TestPutsHitPartitions(t *testing.T) {
	f := newFixture(t, 2, ModeSyrupHW)
	for i := 0; i < 50; i++ {
		key := uint64(i)
		f.dev.Receive(&nic.Packet{
			ID: uint64(i), SrcPort: uint16(1000 + i), DstPort: 9000,
			Payload: policy.EncodeHeader(policy.ReqPUT, 0, KeyHash(key), uint64(i)),
		})
	}
	f.eng.Run()
	var puts uint64
	for i := 0; i < 2; i++ {
		puts += f.srv.Partition(i).Puts
	}
	if puts != 50 {
		t.Fatalf("puts = %d", puts)
	}
}

func TestBadConfigPanics(t *testing.T) {
	eng := sim.New(1)
	m := kernel.New(eng, kernel.Config{NumCPUs: 2})
	_, stack := netstack.Wire(eng, nic.Config{Queues: 2}, netstack.Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("oversubscribed NumThreads accepted")
		}
	}()
	NewServer(eng, m, stack, Config{Port: 9000, App: 1, NumThreads: 5})
}
