package rocksdb

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestStorePutGet(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get("missing"); ok {
		t.Fatal("empty store returned a value")
	}
	s.Put("a", "1")
	s.Put("b", "2")
	s.Put("a", "3") // overwrite
	if v, ok := s.Get("a"); !ok || v != "3" {
		t.Fatalf("a = %q %v", v, ok)
	}
	if v, _ := s.Get("b"); v != "2" {
		t.Fatalf("b = %q", v)
	}
}

func TestStoreGetAcrossFlushes(t *testing.T) {
	s := NewStore()
	s.Put("k", "old")
	s.Flush()
	s.Put("k", "new")
	if v, _ := s.Get("k"); v != "new" {
		t.Fatalf("memtable should shadow runs: %q", v)
	}
	s.Flush()
	if v, _ := s.Get("k"); v != "new" {
		t.Fatalf("newest run should win: %q", v)
	}
	if s.Flushes != 2 {
		t.Fatalf("flushes = %d", s.Flushes)
	}
}

func TestStoreScanMergesAndDedups(t *testing.T) {
	s := NewStore()
	s.Put("a", "1")
	s.Put("c", "old")
	s.Flush()
	s.Put("b", "2")
	s.Put("c", "new")
	got := s.Scan("a", 10)
	want := []KV{{"a", "1"}, {"b", "2"}, {"c", "new"}}
	if len(got) != len(want) {
		t.Fatalf("scan = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Bounded scan.
	if got := s.Scan("a", 2); len(got) != 2 || got[1].Key != "b" {
		t.Fatalf("limited scan = %v", got)
	}
	// Scan from a midpoint.
	if got := s.Scan("b", 10); len(got) != 2 || got[0].Key != "b" {
		t.Fatalf("mid scan = %v", got)
	}
	// Scan past the end.
	if got := s.Scan("zzz", 10); len(got) != 0 {
		t.Fatalf("tail scan = %v", got)
	}
}

func TestStoreAutoFlushAndCompaction(t *testing.T) {
	s := NewStore()
	n := memtableFlushSize*(maxRuns+2) + 17
	for i := 0; i < n; i++ {
		s.Put(Key(i%50000), fmt.Sprintf("v%d", i))
	}
	if s.Flushes == 0 {
		t.Fatal("no automatic flushes")
	}
	if s.Compactions == 0 {
		t.Fatal("no compactions")
	}
	if len(s.runs) > maxRuns+1 {
		t.Fatalf("%d runs after compaction", len(s.runs))
	}
	// Data integrity after compaction: latest writes visible.
	if v, ok := s.Get(Key((n - 1) % 50000)); !ok || v != fmt.Sprintf("v%d", n-1) {
		t.Fatalf("post-compaction read: %q %v", v, ok)
	}
}

// Property: the store agrees with a plain map under random puts/gets, and
// scans return sorted, deduplicated keys.
func TestPropertyStoreMatchesMap(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewStore()
		oracle := map[string]string{}
		for i, op := range ops {
			k := Key(int(op) % 200)
			v := fmt.Sprintf("v%d", i)
			s.Put(k, v)
			oracle[k] = v
		}
		for k, want := range oracle {
			if got, ok := s.Get(k); !ok || got != want {
				return false
			}
		}
		scan := s.Scan("", 1000)
		if len(scan) != len(oracle) {
			return false
		}
		for i := 1; i < len(scan); i++ {
			if scan[i-1].Key >= scan[i].Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPreloadAndLen(t *testing.T) {
	s := NewStore()
	s.Preload(500)
	if got := s.Len(); got != 500 {
		t.Fatalf("len = %d", got)
	}
	if _, ok := s.Get(Key(499)); !ok {
		t.Fatal("preloaded key missing")
	}
}

func BenchmarkStoreGet(b *testing.B) {
	s := NewStore()
	s.Preload(100_000)
	rng := rand.New(rand.NewPCG(1, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(Key(int(rng.Int64N(100_000))))
	}
}

func BenchmarkStoreScan100(b *testing.B) {
	s := NewStore()
	s.Preload(100_000)
	rng := rand.New(rand.NewPCG(1, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Scan(Key(int(rng.Int64N(99_000))), 100)
	}
}
