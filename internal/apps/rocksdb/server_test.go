package rocksdb

import (
	"testing"

	"syrup/internal/ebpf"
	"syrup/internal/kernel"
	"syrup/internal/netstack"
	"syrup/internal/nic"
	"syrup/internal/policy"
	"syrup/internal/sim"
)

func testHost(t *testing.T, cpus, queues int) (*sim.Engine, *kernel.Machine, *nic.NIC, *netstack.Stack) {
	t.Helper()
	eng := sim.New(1)
	m := kernel.New(eng, kernel.Config{NumCPUs: cpus})
	dev, stack := netstack.Wire(eng, nic.Config{Queues: queues}, netstack.Config{})
	return eng, m, dev, stack
}

func reqPacket(id uint64, port uint16, reqType uint64, keyHash uint32, flow uint16) *nic.Packet {
	return &nic.Packet{
		ID: id, SrcIP: 1, DstIP: 2, SrcPort: flow, DstPort: port,
		Payload: policy.EncodeHeader(reqType, 0, keyHash, id),
	}
}

func TestServerServesGets(t *testing.T) {
	eng, m, dev, stack := testHost(t, 2, 1)
	var completions []sim.Time
	srv := NewServer(eng, m, stack, Config{
		Port: 9000, App: 1, NumThreads: 2, PinToCores: true,
		OnComplete: func(id uint64, at sim.Time) { completions = append(completions, at) },
	})
	srv.Start()
	eng.Run()
	for i := 0; i < 10; i++ {
		dev.Receive(reqPacket(uint64(i), 9000, policy.ReqGET, uint32(i), uint16(1000+i)))
	}
	eng.Run()
	if len(completions) != 10 {
		t.Fatalf("completed %d/10", len(completions))
	}
	if srv.ProcessedGET != 10 {
		t.Fatalf("ProcessedGET = %d", srv.ProcessedGET)
	}
	// GETs take ~10-12us service + ~1.1us overheads + stack ~1.6us + 1us
	// ctx switch: completions must be plausibly placed in time.
	for _, at := range completions {
		if at < 10*sim.Microsecond {
			t.Fatalf("completion at %v implausibly early", at)
		}
	}
	// Real storage engine touched.
	if srv.Store().Gets != 10 {
		t.Fatalf("store gets = %d", srv.Store().Gets)
	}
}

func TestServerMarksScanState(t *testing.T) {
	eng, m, dev, stack := testHost(t, 1, 1)
	scanState := ebpf.MustNewMap(ebpf.MapSpec{Name: "scan_state", Type: ebpf.MapArray, KeySize: 4, ValueSize: 8, MaxEntries: 4})
	srv := NewServer(eng, m, stack, Config{
		Port: 9000, App: 1, NumThreads: 1, ScanState: scanState,
	})
	srv.Start()
	eng.Run()
	dev.Receive(reqPacket(1, 9000, policy.ReqSCAN, 5, 1000))
	// Mid-SCAN (service ≈ 700us), the slot must read SCAN.
	eng.RunUntil(eng.Now() + 300*sim.Microsecond)
	if got := srv.ThreadSlotType(0); got != policy.ReqSCAN {
		t.Fatalf("mid-scan slot type = %d", got)
	}
	eng.Run()
	if got := srv.ThreadSlotType(0); got != policy.ReqGET {
		t.Fatalf("post-scan slot type = %d", got)
	}
	if srv.ProcessedSCAN != 1 {
		t.Fatalf("scans = %d", srv.ProcessedSCAN)
	}
}

func TestServerMalformedRequestIgnored(t *testing.T) {
	eng, m, dev, stack := testHost(t, 1, 1)
	srv := NewServer(eng, m, stack, Config{Port: 9000, App: 1, NumThreads: 1})
	srv.Start()
	eng.Run()
	dev.Receive(&nic.Packet{ID: 1, SrcPort: 1, DstPort: 9000, Payload: []byte{1, 2, 3}})
	dev.Receive(reqPacket(2, 9000, policy.ReqGET, 0, 1))
	eng.Run()
	if srv.ProcessedGET != 1 {
		t.Fatalf("processed = %d (malformed should be skipped)", srv.ProcessedGET)
	}
}

func TestServerThreadsBlockWhenIdle(t *testing.T) {
	eng, m, _, stack := testHost(t, 2, 1)
	srv := NewServer(eng, m, stack, Config{Port: 9000, App: 1, NumThreads: 2})
	srv.Start()
	eng.Run()
	for i, th := range srv.Threads() {
		if th.State() != kernel.ThreadBlocked {
			t.Fatalf("idle thread %d in state %v", i, th.State())
		}
	}
}

func TestServerPinning(t *testing.T) {
	eng, m, dev, stack := testHost(t, 2, 1)
	srv := NewServer(eng, m, stack, Config{Port: 9000, App: 1, NumThreads: 2, PinToCores: true})
	srv.Start()
	eng.Run()
	// Drive one request to each thread via distinct flows until both have
	// work; threads must run on their own cores.
	for i := 0; i < 40; i++ {
		dev.Receive(reqPacket(uint64(i), 9000, policy.ReqGET, uint32(i), uint16(2000+i)))
	}
	eng.RunUntil(eng.Now() + 20*sim.Microsecond)
	for i, th := range srv.Threads() {
		if cpu := th.OnCPU(); cpu != -1 && int(cpu) != i {
			t.Fatalf("pinned thread %d on cpu %d", i, cpu)
		}
	}
	eng.Run()
}
