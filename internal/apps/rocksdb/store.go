// Package rocksdb provides the RocksDB-like key-value server the paper's
// §5.2/§5.3 experiments run: a real (if miniature) LSM storage engine —
// mutable memtable, immutable sorted runs, merged iterators for SCANs —
// plus the multi-threaded SO_REUSEPORT UDP server model whose scheduling
// Syrup policies control.
//
// The storage engine does real work per request; the simulation charges
// the paper's measured service times in virtual time (GET 10–12 µs, SCAN
// ≈ 700 µs), since wall-clock cost of our Go engine is not the paper's
// hardware.
package rocksdb

import (
	"fmt"
	"sort"
	"sync"
)

// memtableFlushSize is the number of entries after which the memtable is
// sealed into an immutable sorted run.
const memtableFlushSize = 4096

// maxRuns triggers a full compaction when exceeded.
const maxRuns = 8

// Store is a miniature LSM tree: one mutable memtable plus a stack of
// immutable sorted runs, newest first. It is safe for concurrent use.
type Store struct {
	mu       sync.RWMutex
	memtable map[string]string
	runs     []run // runs[0] is newest

	// Stats.
	Gets, Puts, Scans, Flushes, Compactions uint64
}

type run struct {
	keys   []string
	values []string
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{memtable: make(map[string]string)}
}

// Put inserts or overwrites a key.
func (s *Store) Put(key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Puts++
	s.memtable[key] = value
	if len(s.memtable) >= memtableFlushSize {
		s.flushLocked()
	}
}

// Get returns the newest value for key.
func (s *Store) Get(key string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.Gets++
	if v, ok := s.memtable[key]; ok {
		return v, true
	}
	for _, r := range s.runs {
		if i := sort.SearchStrings(r.keys, key); i < len(r.keys) && r.keys[i] == key {
			return r.values[i], true
		}
	}
	return "", false
}

// Scan returns up to limit key/value pairs with key >= start, in key
// order, merging the memtable and all runs (newest version wins).
func (s *Store) Scan(start string, limit int) []KV {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.Scans++
	iters := make([]*iterator, 0, len(s.runs)+1)
	iters = append(iters, newMemIterator(s.memtable, start))
	for _, r := range s.runs {
		iters = append(iters, newRunIterator(r, start))
	}
	var out []KV
	for len(out) < limit {
		// Find the smallest current key; ties resolve to the newest
		// iterator (lowest index), and older duplicates advance past it.
		best := -1
		for i, it := range iters {
			if !it.valid() {
				continue
			}
			if best == -1 || it.key() < iters[best].key() {
				best = i
			}
		}
		if best == -1 {
			break
		}
		k := iters[best].key()
		out = append(out, KV{Key: k, Value: iters[best].value()})
		for _, it := range iters {
			for it.valid() && it.key() == k {
				it.next()
			}
		}
	}
	return out
}

// KV is one scan result entry.
type KV struct {
	Key, Value string
}

// Len reports the total number of live entries (approximate: counts
// shadowed versions once).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[string]bool, len(s.memtable))
	for k := range s.memtable {
		seen[k] = true
	}
	for _, r := range s.runs {
		for _, k := range r.keys {
			seen[k] = true
		}
	}
	return len(seen)
}

// Flush seals the memtable into a run (exported for tests).
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
}

func (s *Store) flushLocked() {
	if len(s.memtable) == 0 {
		return
	}
	s.Flushes++
	keys := make([]string, 0, len(s.memtable))
	for k := range s.memtable {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	values := make([]string, len(keys))
	for i, k := range keys {
		values[i] = s.memtable[k]
	}
	s.runs = append([]run{{keys: keys, values: values}}, s.runs...)
	s.memtable = make(map[string]string)
	if len(s.runs) > maxRuns {
		s.compactLocked()
	}
}

// compactLocked merges all runs into one, dropping shadowed versions.
func (s *Store) compactLocked() {
	s.Compactions++
	merged := make(map[string]string)
	for i := len(s.runs) - 1; i >= 0; i-- { // oldest first; newer overwrite
		r := s.runs[i]
		for j, k := range r.keys {
			merged[k] = r.values[j]
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	values := make([]string, len(keys))
	for i, k := range keys {
		values[i] = merged[k]
	}
	s.runs = []run{{keys: keys, values: values}}
}

// iterator walks one source in key order starting at a lower bound.
type iterator struct {
	keys   []string
	values []string
	pos    int
}

func newRunIterator(r run, start string) *iterator {
	pos := sort.SearchStrings(r.keys, start)
	return &iterator{keys: r.keys, values: r.values, pos: pos}
}

func newMemIterator(m map[string]string, start string) *iterator {
	keys := make([]string, 0, len(m))
	for k := range m {
		if k >= start {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	values := make([]string, len(keys))
	for i, k := range keys {
		values[i] = m[k]
	}
	return &iterator{keys: keys, values: values}
}

func (it *iterator) valid() bool   { return it.pos < len(it.keys) }
func (it *iterator) key() string   { return it.keys[it.pos] }
func (it *iterator) value() string { return it.values[it.pos] }
func (it *iterator) next()         { it.pos++ }

// Preload fills the store with n sequential keys ("key-%08d") so GETs and
// SCANs have data to touch.
func (s *Store) Preload(n int) {
	for i := 0; i < n; i++ {
		s.Put(Key(i), fmt.Sprintf("value-%d", i))
	}
}

// Key renders the canonical preloaded key for index i.
func Key(i int) string { return fmt.Sprintf("key-%08d", i) }
