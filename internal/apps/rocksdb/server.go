package rocksdb

import (
	"fmt"

	"syrup/internal/ebpf"
	"syrup/internal/kernel"
	"syrup/internal/netstack"
	"syrup/internal/nic"
	"syrup/internal/policy"
	"syrup/internal/sim"
	"syrup/internal/trace"
)

// ServiceModel produces per-request virtual service times.
type ServiceModel func(rng interface{ Float64() float64 }, reqType uint64) sim.Time

// DefaultServiceModel is the paper's RocksDB profile: GETs uniform
// 10–12 µs, SCANs ≈ 700 µs ±5 %, PUTs like GETs.
func DefaultServiceModel(rng interface{ Float64() float64 }, reqType uint64) sim.Time {
	switch reqType {
	case policy.ReqSCAN:
		return sim.Time(700_000 * (0.95 + 0.1*rng.Float64()))
	default:
		return sim.Time(10_000 + 2_000*rng.Float64())
	}
}

// Config describes a RocksDB server deployment.
type Config struct {
	Port       uint16
	App        uint32
	NumThreads int
	// PinToCores pins thread i to core i%NumCPUs (the 6-thread/6-core
	// setups); false leaves placement to the scheduler (the 36-thread
	// Fig. 8 setup).
	PinToCores bool
	// Service overrides DefaultServiceModel.
	Service ServiceModel
	// RecvOverhead and SendOverhead are the per-request syscall+copy+
	// reply costs around the storage operation (≈1.25 µs each,
	// calibrated so 6 GET-serving threads saturate near the paper's
	// ≈450 K RPS in Fig. 2).
	RecvOverhead sim.Time
	SendOverhead sim.Time
	// ScanState, when set, is updated with the request type each thread
	// is processing (the userspace half of SCAN Avoid, Fig. 5b, also read
	// by the ghOSt GET-priority policy).
	ScanState *ebpf.Map
	// OnComplete reports request completions (server-side finish time).
	OnComplete func(reqID uint64, finish sim.Time)
	// Store is the shared storage engine; nil creates a preloaded one.
	Store *Store
	// KeySpace bounds the preloaded keys touched by real operations.
	KeySpace int
	// FlowLocalityBonus models Receive Flow Steering's cache benefit
	// (§2.1): each thread keeps a small warm set of recently served flows
	// (flowLRUSize entries); serving a warm flow shrinks the request's
	// service time by this fraction. Hash steering pins each flow to one
	// thread and keeps it warm; policies that spray flows across threads
	// forfeit the discount.
	FlowLocalityBonus float64
	// Tracer, when enabled, receives the kernel-side lifecycle spans:
	// socket wait (enqueue→dequeue), runqueue wait (wake→dispatch, when
	// the worker was blocked), and on-CPU service (dequeue→completion).
	Tracer *trace.Recorder
}

// flowLRUSize is the per-thread warm flow-context capacity.
const flowLRUSize = 4

// Server is a multi-threaded SO_REUSEPORT UDP RocksDB server.
type Server struct {
	cfg     Config
	eng     *sim.Engine
	store   *Store
	threads []*kernel.Thread
	sockets []*netstack.Socket

	// Processed counts completed requests per type.
	ProcessedGET  uint64
	ProcessedSCAN uint64
	// LocalityHits counts requests served from a thread's warm flow set.
	LocalityHits uint64

	warmFlows [][]uint64 // per-thread LRU of recently served flows
	keyTable  []string   // precomputed canonical keys, indexed by keyHash % KeySpace
}

// NewServer creates the server's threads and sockets. Each worker thread
// owns exactly one socket in the port's reuseport group, so a Socket
// Select verdict of i schedules onto thread i.
func NewServer(eng *sim.Engine, m *kernel.Machine, stack *netstack.Stack, cfg Config) *Server {
	if cfg.NumThreads <= 0 {
		panic("rocksdb: NumThreads must be positive")
	}
	if cfg.Service == nil {
		cfg.Service = DefaultServiceModel
	}
	if cfg.RecvOverhead == 0 {
		cfg.RecvOverhead = 1250 * sim.Nanosecond
	}
	if cfg.SendOverhead == 0 {
		cfg.SendOverhead = 1250 * sim.Nanosecond
	}
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 10_000
	}
	s := &Server{cfg: cfg, eng: eng, store: cfg.Store, warmFlows: make([][]uint64, cfg.NumThreads)}
	if s.store == nil {
		s.store = NewStore()
		s.store.Preload(cfg.KeySpace)
	}
	// Rendering "key-%08d" per request would dominate the serve path's
	// allocations; the key space is small and fixed, so build it once.
	s.keyTable = make([]string, cfg.KeySpace)
	for i := range s.keyTable {
		s.keyTable[i] = Key(i)
	}
	for i := 0; i < cfg.NumThreads; i++ {
		i := i
		sock, idx := stack.NewUDPSocket(cfg.Port, cfg.App, fmt.Sprintf("rocksdb-w%d", i))
		if idx != i {
			panic("rocksdb: socket index mismatch")
		}
		s.sockets = append(s.sockets, sock)
		var affinity uint64
		if cfg.PinToCores {
			affinity = 1 << uint(i%m.NumCPUs())
		}
		th := m.NewThread(fmt.Sprintf("rocksdb-%d", i), cfg.App, affinity, func(th *kernel.Thread) {
			s.workerLoop(th, i)
		})
		s.threads = append(s.threads, th)
	}
	return s
}

// Threads exposes the worker threads (for ghOSt registration).
func (s *Server) Threads() []*kernel.Thread { return s.threads }

// Sockets exposes the per-thread sockets.
func (s *Server) Sockets() []*netstack.Socket { return s.sockets }

// Store exposes the storage engine.
func (s *Server) Store() *Store { return s.store }

// Start wakes all worker threads.
func (s *Server) Start() {
	for _, th := range s.threads {
		th.Wake()
	}
}

// ThreadSlotType returns the request type thread i is currently marked as
// processing (for ghOSt policies that read the cross-layer map).
func (s *Server) ThreadSlotType(i int) uint64 {
	if s.cfg.ScanState == nil {
		return 0
	}
	v, _ := s.cfg.ScanState.LookupUint64(uint32(i))
	return v
}

// touchFlow reports whether flow was warm on thread slot and promotes it
// to the front of the thread's LRU.
func (s *Server) touchFlow(slot int, flow uint64) bool {
	lru := s.warmFlows[slot]
	for i, f := range lru {
		if f == flow {
			copy(lru[1:i+1], lru[:i])
			lru[0] = flow
			return true
		}
	}
	if len(lru) < flowLRUSize {
		lru = append(lru, 0)
	}
	copy(lru[1:], lru)
	lru[0] = flow
	s.warmFlows[slot] = lru
	return false
}

// worker is one thread's serve-loop state plus its preallocated
// continuation, so steady-state request service schedules on th.Exec
// without allocating a closure per request.
type worker struct {
	s    *Server
	th   *kernel.Thread
	slot int
	sock *netstack.Socket
	// wasBlocked marks that this packet's dequeue followed a block→wake
	// cycle, so the serve path can attribute the runqueue wait.
	wasBlocked bool

	loop func()
	wake func()

	// In-flight request, consumed by opCont.
	pkt     *nic.Packet
	reqType uint64
	reqID   uint64
	keyHash uint32
	start   sim.Time

	opCont func()
}

// workerLoop is the per-thread serve loop: recv → mark type → burn the
// service time → perform the real storage op → reply → repeat.
func (s *Server) workerLoop(th *kernel.Thread, slot int) {
	w := &worker{s: s, th: th, slot: slot, sock: s.sockets[slot]}
	w.wake = func() { th.Wake() }
	w.opCont = w.finishOp
	w.loop = func() {
		pkt := w.sock.TryRecv()
		if pkt == nil {
			w.sock.WaitRecv(w.wake)
			w.wasBlocked = true
			th.Block(w.loop)
			return
		}
		blocked := w.wasBlocked
		w.wasBlocked = false
		s.serve(w, pkt, blocked)
	}
	w.loop()
}

func (s *Server) serve(w *worker, pkt *nic.Packet, wasBlocked bool) {
	th, slot := w.th, w.slot
	reqType, _, keyHash, reqID, ok := policy.DecodeHeader(pkt.Payload)
	if !ok {
		pkt.Free()
		w.loop() // malformed request: ignore
		return
	}
	start := s.eng.Now()
	if s.cfg.Tracer.Enabled() {
		cpu := int32(th.LastCPU())
		// Socket wait: enqueue to this dequeue. The runqueue wait
		// (wake→dispatch) sits inside its tail whenever the worker had
		// to block, and is recorded as its own sub-stage span.
		s.cfg.Tracer.Record(trace.Span{
			Req: pkt.ID, Start: pkt.EnqueuedAt, End: start, Stage: trace.StageSocket,
			CPU: cpu, Executor: uint32(slot), Port: pkt.DstPort,
		})
		if wasBlocked {
			s.cfg.Tracer.Record(trace.Span{
				Req: pkt.ID, Start: th.LastWakeAt(), End: th.DispatchedAt(),
				Stage: trace.StageRunqueue, CPU: cpu, Executor: uint32(slot), Port: pkt.DstPort,
			})
		}
	}
	if s.cfg.ScanState != nil {
		// Userspace half of SCAN Avoid: record what we're processing.
		s.cfg.ScanState.UpdateUint64(uint32(slot), reqType)
	}
	service := s.cfg.Service(s.eng.Rand(), reqType)
	if s.cfg.FlowLocalityBonus > 0 {
		flow := uint64(pkt.SrcIP)<<16 | uint64(pkt.SrcPort)
		if s.touchFlow(slot, flow) {
			s.LocalityHits++
			service = sim.Time(float64(service) * (1 - s.cfg.FlowLocalityBonus))
		}
	}
	total := s.cfg.RecvOverhead + service + s.cfg.SendOverhead
	w.pkt, w.reqType, w.reqID, w.keyHash, w.start = pkt, reqType, reqID, keyHash, start
	th.Exec(total, w.opCont)
}

// finishOp performs the real storage operation for the parked request
// (virtual time already charged by serve) and completes it.
func (w *worker) finishOp() {
	s, slot, pkt := w.s, w.slot, w.pkt
	w.pkt = nil
	key := s.keyTable[int(w.keyHash)%s.cfg.KeySpace]
	switch w.reqType {
	case policy.ReqSCAN:
		s.store.Scan(key, 100)
		s.ProcessedSCAN++
	case policy.ReqPUT:
		s.store.Put(key, "updated")
		s.ProcessedGET++
	default:
		s.store.Get(key)
		s.ProcessedGET++
	}
	if s.cfg.ScanState != nil {
		s.cfg.ScanState.UpdateUint64(uint32(slot), policy.ReqGET)
	}
	if s.cfg.Tracer.Enabled() {
		s.cfg.Tracer.Record(trace.Span{
			Req: pkt.ID, Start: w.start, End: s.eng.Now(), Stage: trace.StageOnCPU,
			CPU: int32(w.th.LastCPU()), Executor: uint32(slot), Port: pkt.DstPort,
		})
	}
	if s.cfg.OnComplete != nil {
		s.cfg.OnComplete(w.reqID, s.eng.Now())
	}
	pkt.Free()
	w.loop()
}
