// Package nic models the network interface card: RX queues with bounded
// descriptor rings, RSS hash steering with an indirection table, and — for
// the Syrup XDP Offload hook — an on-NIC eBPF engine that runs a verified
// program against each arriving frame to pick its RX queue, exactly as the
// paper does on the Netronome Agilio CX (§5.4). On-NIC maps are reachable
// from the host through a proxy that charges the ≈25 µs PCIe round trip
// Table 3 reports.
package nic

import (
	"encoding/binary"
	"fmt"
	"sync"

	"syrup/internal/ebpf"
	"syrup/internal/faults"
	"syrup/internal/hook"
	"syrup/internal/sim"
	"syrup/internal/trace"
)

// Packet is one network frame moving through the simulated host. The bytes
// visible to eBPF policies are UDP header (8 bytes) + application payload,
// matching the view the paper's policies parse (e.g., Fig. 3 hashes the
// udphdr at pkt_start).
type Packet struct {
	ID uint64

	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16

	// TCP marks the packet as a TCP segment (default is a UDP datagram);
	// SYN marks a connection-establishing segment.
	TCP bool
	SYN bool

	Payload []byte

	// SentAt is the client-side send timestamp (for end-to-end latency).
	SentAt sim.Time
	// ArrivedAt is stamped by the NIC on reception.
	ArrivedAt sim.Time
	// SoftirqAt, ProtoAt, and EnqueuedAt are trace stamps marking the
	// start of softirq work, the start of protocol processing, and the
	// socket enqueue; layers fill them only when tracing so per-stage
	// spans have exact boundaries (zero when tracing is off).
	SoftirqAt  sim.Time
	ProtoAt    sim.Time
	EnqueuedAt sim.Time
	// Queue is the RX queue the NIC placed the packet on.
	Queue int

	// wire caches the policy-visible byte view.
	wire []byte

	// hdr is scratch storage for small generated payloads (see HeaderBuf);
	// pooled/freed drive the page-pool-style recycler (see NewPacket/Free).
	hdr    [32]byte
	pooled bool
	freed  bool
}

// pktPool recycles Packets across requests — the simulator's page_pool:
// the datapath allocates one descriptor per request at the generator and
// returns it at its terminal point (serve completion or drop), so
// steady-state load stops exercising the garbage collector.
var pktPool = sync.Pool{New: func() any { return new(Packet) }}

// NewPacket returns a zeroed Packet from the recycler. Packets obtained
// here should be released with Free at their terminal point; packets built
// with a plain literal are ordinary GC-managed values and Free ignores
// them, so the two allocation styles mix safely.
func NewPacket() *Packet {
	p := pktPool.Get().(*Packet)
	p.pooled, p.freed = true, false
	return p
}

// HeaderBuf returns the packet's inline scratch buffer (length 0), for
// building small payloads without a separate heap allocation:
// pkt.Payload = append(pkt.HeaderBuf(), ...).
func (p *Packet) HeaderBuf() []byte { return p.hdr[:0] }

// Free returns a pooled packet to the recycler. Only terminal owners may
// call it — the layer that drops the packet or the server that finished
// serving it — and only once; a second Free of a live pooled packet is a
// datapath ownership bug and panics. Free on a non-pooled packet is a
// no-op.
func (p *Packet) Free() {
	if !p.pooled {
		return
	}
	if p.freed {
		panic(fmt.Sprintf("nic: double Free of packet %d", p.ID))
	}
	wire := p.wire
	*p = Packet{}
	p.wire = wire[:0]
	p.pooled, p.freed = true, true
	pktPool.Put(p)
}

// Bytes renders the policy-visible view: an 8-byte UDP header followed by
// the payload. The slice is cached; policies may write to it (XDP allows
// packet writes) and later hooks will observe those writes. Recycled
// packets rebuild into the previous packet's buffer when it is large
// enough.
func (p *Packet) Bytes() []byte {
	if len(p.wire) == 0 {
		need := 8 + len(p.Payload)
		if cap(p.wire) < need {
			p.wire = make([]byte, need)
		} else {
			p.wire = p.wire[:need]
		}
		binary.BigEndian.PutUint16(p.wire[0:], p.SrcPort)
		binary.BigEndian.PutUint16(p.wire[2:], p.DstPort)
		binary.BigEndian.PutUint16(p.wire[4:], uint16(8+len(p.Payload)))
		// Bytes 6-7: checksum, left zero.
		p.wire[6], p.wire[7] = 0, 0
		copy(p.wire[8:], p.Payload)
	}
	return p.wire
}

// FNV-1a, hand-rolled: hash/fnv's digest allocates per packet and its
// Write call can't inline; this produces bit-identical values.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// RSSHash is the NIC's receive-side-scaling hash over the 5-tuple
// (deterministic stand-in for Toeplitz). The 13 hashed bytes are src IP,
// dst IP, src port, dst port (big-endian) and the protocol number.
func (p *Packet) RSSHash() uint32 {
	h := uint32(fnvOffset32)
	h = (h ^ uint32(byte(p.SrcIP>>24))) * fnvPrime32
	h = (h ^ uint32(byte(p.SrcIP>>16))) * fnvPrime32
	h = (h ^ uint32(byte(p.SrcIP>>8))) * fnvPrime32
	h = (h ^ uint32(byte(p.SrcIP))) * fnvPrime32
	h = (h ^ uint32(byte(p.DstIP>>24))) * fnvPrime32
	h = (h ^ uint32(byte(p.DstIP>>16))) * fnvPrime32
	h = (h ^ uint32(byte(p.DstIP>>8))) * fnvPrime32
	h = (h ^ uint32(byte(p.DstIP))) * fnvPrime32
	h = (h ^ uint32(byte(p.SrcPort>>8))) * fnvPrime32
	h = (h ^ uint32(byte(p.SrcPort))) * fnvPrime32
	h = (h ^ uint32(byte(p.DstPort>>8))) * fnvPrime32
	h = (h ^ uint32(byte(p.DstPort))) * fnvPrime32
	proto := byte(17)
	if p.TCP {
		proto = 6
	}
	return (h ^ uint32(proto)) * fnvPrime32
}

// Config sets NIC geometry and costs.
type Config struct {
	Queues int
	// RingSize bounds each RX queue's descriptor ring (packets dropped on
	// overflow, as when the host cannot keep up).
	RingSize int
	// OffloadCost is the on-NIC per-packet program cost. NIC engines are
	// heavily parallel, so this models added wire latency rather than a
	// serial bottleneck.
	OffloadCost sim.Time
	// HostMapRTT is the host↔NIC round trip for map operations on
	// offloaded maps (Table 3 measures ≈25 µs on the Netronome).
	HostMapRTT sim.Time
	// Budget is the NAPI-style drain budget: the number of ring-resident
	// packets one softirq delivery event hands to the host. 0 or 1 keeps
	// the legacy one-event-per-packet path; >1 enables burst drains (see
	// DESIGN.md "Batched datapath"). Per-packet simulated timestamps are
	// preserved at any budget.
	Budget int
}

func (c *Config) fill() {
	if c.Queues == 0 {
		c.Queues = 1
	}
	if c.Budget == 0 {
		c.Budget = 1
	}
	if c.RingSize == 0 {
		c.RingSize = 1024
	}
	if c.OffloadCost == 0 {
		c.OffloadCost = 300 * sim.Nanosecond
	}
	if c.HostMapRTT == 0 {
		c.HostMapRTT = 25 * sim.Microsecond
	}
}

// DeliverFunc receives packets the NIC has placed on a queue; the host
// (softirq) side consumes them. Returning false signals backpressure: the
// packet stays accounted against the ring until the host drains it.
type DeliverFunc func(queue int, pkt *Packet)

// BatchDeliverFunc receives a whole burst drained from one queue's ring in
// one softirq event (Budget > 1). The slice is the NIC's scratch buffer:
// the callee must take what it needs before returning. All packets of a
// burst share one due instant — per-packet delivery times are identical to
// the per-packet path.
type BatchDeliverFunc func(queue int, pkts []*Packet)

// Stats counts NIC-level events.
type Stats struct {
	Received     uint64
	DroppedRing  uint64
	DroppedByXDP uint64
	OffloadRuns  uint64
	// OffloadFaults counts offload-program runtime errors. A verified
	// program faulting means a verifier escape; the packet fails open to
	// RSS, but the escape must be visible, not silently read as PASS.
	OffloadFaults uint64
}

// NIC is the simulated device.
type NIC struct {
	eng *sim.Engine
	cfg Config

	rssTable []int // 128-entry indirection table

	// offload is the XDP Offload hook point: it owns the installed
	// program, the NIC-side Env, and the reusable scratch Ctx.
	offload *hook.Point

	// inflight counts packets handed to the host but not yet consumed,
	// per queue; it bounds the ring.
	inflight []int

	deliver DeliverFunc
	// deliverCB is the stored closure-free callback for the per-packet
	// delivery event (arg = *Packet, u = queue), so Receive schedules
	// without allocating.
	deliverCB sim.Callback

	// Burst-drain state (Budget > 1): per-queue rings of accepted packets
	// awaiting their softirq delivery instant (each packet arms its own
	// drain event at Receive), a stored drain callback, and the handoff
	// scratch.
	batchDeliver BatchDeliverFunc
	rings        [][]ringEntry
	drainCB      sim.Callback
	burst        []*Packet

	// tracer, when enabled, receives one StageNIC span per packet
	// (arrival to ring handoff, including offload-engine latency).
	tracer *trace.Recorder

	// faults, when armed by a chaos plan, injects RX ring overflows; the
	// offload hook point and NIC-side Env carry their own triggers.
	faults *faults.Injector

	Stats Stats
}

// New creates a NIC; deliver is invoked (via the event loop) for every
// packet that survives steering.
func New(eng *sim.Engine, cfg Config, deliver DeliverFunc) *NIC {
	cfg.fill()
	n := &NIC{eng: eng, cfg: cfg, deliver: deliver, inflight: make([]int, cfg.Queues)}
	n.deliverCB = func(arg any, u uint64) { n.deliver(int(u), arg.(*Packet)) }
	if cfg.Budget > 1 {
		n.rings = make([][]ringEntry, cfg.Queues)
		n.drainCB = func(_ any, u uint64) { n.drain(int(u)) }
	}
	n.rssTable = make([]int, 128)
	for i := range n.rssTable {
		n.rssTable[i] = i % cfg.Queues
	}
	n.offload = hook.NewPoint(hook.XDPOffload, string(hook.XDPOffload), &ebpf.Env{
		Prandom: func() uint32 { return eng.Rand().Uint32() },
		Ktime:   func() uint64 { return uint64(eng.Now()) },
	})
	return n
}

// NumQueues reports the RX queue count.
func (n *NIC) NumQueues() int { return n.cfg.Queues }

// InflightTotal sums the packets handed to the host but not yet consumed
// across every queue — a live gauge for the telemetry sampler.
func (n *NIC) InflightTotal() int {
	total := 0
	for _, v := range n.inflight {
		total += v
	}
	return total
}

// RingOccupancy sums the packets accepted into the burst-drain rings and
// awaiting their softirq delivery instant (always 0 when Budget <= 1) — a
// live gauge for the telemetry sampler.
func (n *NIC) RingOccupancy() int {
	total := 0
	for _, r := range n.rings {
		total += len(r)
	}
	return total
}

// HostMapRTT reports the configured host↔NIC map round trip.
func (n *NIC) HostMapRTT() sim.Time { return n.cfg.HostMapRTT }

// Offload exposes the XDP Offload hook point; syrupd attaches through it.
func (n *NIC) Offload() *hook.Point { return n.offload }

// SetTracer wires the request tracer through the device: the NIC
// records arrival→handoff spans and the offload hook point records its
// verdicts.
func (n *NIC) SetTracer(r *trace.Recorder) {
	n.tracer = r
	n.offload.SetTracer(r, n.eng.Now)
}

// SetFaults arms the device with a chaos plan's injector (nil disarms):
// ring overflows on SiteNICRing, offload-engine faults on SiteOffload,
// and helper errors inside offloaded programs through the NIC-side Env.
func (n *NIC) SetFaults(inj *faults.Injector) {
	n.faults = inj
	n.offload.SetFaultInjector(inj.FireFn(faults.SiteOffload))
	env := n.offload.Env()
	env.FaultLookupMiss = inj.FireFn(faults.SiteHelperLookup)
	env.FaultUpdateFail = inj.FireFn(faults.SiteHelperUpdate)
	env.FaultTailCall = inj.FireFn(faults.SiteTailCall)
}

// SetOffloadProgram installs the XDP Offload hook program (nil clears),
// attaching/replacing/detaching through the hook point. The program's
// verdict selects the RX queue; PASS falls back to RSS; DROP discards the
// frame.
func (n *NIC) SetOffloadProgram(p *ebpf.Program) { n.offload.Set(p) }

// Receive is called at the packet's wire-arrival time. It runs offloaded
// steering, applies RSS otherwise, and hands the packet to the host after
// the device-side costs.
func (n *NIC) Receive(pkt *Packet) {
	n.Stats.Received++
	pkt.ArrivedAt = n.eng.Now()
	hash := pkt.RSSHash()
	queue := n.rssTable[hash%uint32(len(n.rssTable))]
	extra := sim.Time(0)

	if n.offload.Attached() {
		n.Stats.OffloadRuns++
		extra = n.cfg.OffloadCost
		v := n.offload.Run(hook.Input{
			Packet: pkt.Bytes(),
			Hash:   hash,
			Port:   uint32(pkt.DstPort),
			Queue:  uint32(queue),
			Req:    pkt.ID,
		})
		switch {
		case v.Faulted:
			n.Stats.OffloadFaults++ // fail open: keep RSS choice
		case v.Action == hook.Drop:
			n.Stats.DroppedByXDP++
			n.traceNIC(pkt, pkt.ArrivedAt, queue, trace.VerdictDrop)
			pkt.Free()
			return
		case v.Action == hook.Pass:
			// keep RSS choice
		case int(v.Index) < n.cfg.Queues:
			queue = int(v.Index)
		default:
			// Out-of-range executor index: no such queue.
			n.Stats.DroppedByXDP++
			n.traceNIC(pkt, pkt.ArrivedAt, queue, trace.VerdictDrop)
			pkt.Free()
			return
		}
	}

	// An injected ring overflow drops exactly where a full ring would.
	if n.inflight[queue] >= n.cfg.RingSize || n.faults.Fire(faults.SiteNICRing) {
		n.Stats.DroppedRing++
		n.traceNIC(pkt, pkt.ArrivedAt, queue, trace.VerdictDrop)
		pkt.Free()
		return
	}
	n.inflight[queue]++
	pkt.Queue = queue
	n.traceNIC(pkt, pkt.ArrivedAt+extra, queue, trace.VerdictNone)
	if n.cfg.Budget > 1 {
		// Burst path: the packet parks on the queue's ring until its due
		// instant, and its own drain event is armed right here — the same
		// point the per-packet path allocates its delivery event, so event
		// sequence numbers (and therefore same-instant FIFO ordering
		// against unrelated streams) match the legacy path. A drain pops
		// every due entry up to the budget, so coinciding due instants
		// still move as one burst and the later events find nothing.
		n.rings[queue] = append(n.rings[queue], ringEntry{pkt: pkt, due: n.eng.Now() + extra})
		n.eng.CallAfter(extra, n.drainCB, nil, uint64(queue))
		return
	}
	n.eng.CallAfter(extra, n.deliverCB, pkt, uint64(queue))
}

// ringEntry is one ring-resident packet awaiting its delivery instant
// (arrival plus the offload engine's latency; due times are monotone per
// queue because every packet pays the same offload cost).
type ringEntry struct {
	pkt *Packet
	due sim.Time
}

// drain is the burst softirq event: hand up to Budget due packets from the
// queue's ring to the host in one go. The ring accounting (inflight) is
// decremented by the host per packet actually consumed — never by burst
// length up front — so a packet the host drops at admission is not
// double-consumed (the Consumed underflow bug the batched drain originally
// tripped). A drain finding nothing due is a coinciding later event whose
// packet an earlier burst already carried.
func (n *NIC) drain(queue int) {
	now := n.eng.Now()
	ring := n.rings[queue]
	b := n.burst[:0]
	i := 0
	for ; i < len(ring) && len(b) < n.cfg.Budget && ring[i].due <= now; i++ {
		b = append(b, ring[i].pkt)
		ring[i].pkt = nil
	}
	if i == 0 {
		return
	}
	rest := copy(ring, ring[i:])
	for j := rest; j < len(ring); j++ {
		ring[j].pkt = nil
	}
	n.rings[queue] = ring[:rest]
	if rest > 0 && ring[0].due <= now {
		// Budget exhausted with due packets left: their own drain events
		// coincided with this one and have already fired, so re-arm.
		n.eng.CallAt(now, n.drainCB, nil, uint64(queue))
	}
	n.burst = b
	n.handoff(queue, b)
}

// handoff hands a drained burst to the host, preferring the vectorized
// entry point.
func (n *NIC) handoff(queue int, pkts []*Packet) {
	if n.batchDeliver != nil {
		n.batchDeliver(queue, pkts)
		return
	}
	for _, pkt := range pkts {
		n.deliver(queue, pkt)
	}
}

// SetBatchDeliver installs the burst handoff the drain path uses when the
// budget exceeds 1 (netstack.Wire supplies Stack.DeliverBatch).
func (n *NIC) SetBatchDeliver(fn BatchDeliverFunc) { n.batchDeliver = fn }

// Budget reports the configured drain budget.
func (n *NIC) Budget() int { return n.cfg.Budget }

// Inflight reports how many packets of queue's ring the host has not yet
// consumed (tests assert ring accounting around burst drains).
func (n *NIC) Inflight(queue int) int { return n.inflight[queue] }

// traceNIC records the packet's StageNIC span: arrival to ring handoff
// (end includes the offload engine's added latency); drops end at the
// drop decision with a drop verdict.
func (n *NIC) traceNIC(pkt *Packet, end sim.Time, queue int, v trace.Verdict) {
	if !n.tracer.Enabled() {
		return
	}
	n.tracer.Record(trace.Span{
		Req: pkt.ID, Start: pkt.ArrivedAt, End: end, Stage: trace.StageNIC,
		Verdict: v, CPU: int32(queue), Port: pkt.DstPort,
	})
}

// Consumed tells the NIC the host finished taking a packet off a ring.
func (n *NIC) Consumed(queue int) {
	if n.inflight[queue] <= 0 {
		panic(fmt.Sprintf("nic: Consumed on empty ring %d", queue))
	}
	n.inflight[queue]--
}

// OffloadedMap wraps an on-NIC map with host-access latency: every
// operation issued from the host completes after the PCIe round trip, while
// the NIC-side program keeps memory-speed access (Table 3). Host-side calls
// are asynchronous because they consume simulated time.
type OffloadedMap struct {
	eng *sim.Engine
	m   *ebpf.Map
	rtt sim.Time
}

// OffloadMap declares m as living on the NIC.
func (n *NIC) OffloadMap(m *ebpf.Map) *OffloadedMap {
	return &OffloadedMap{eng: n.eng, m: m, rtt: n.cfg.HostMapRTT}
}

// Inner returns the underlying map (the NIC-side view).
func (o *OffloadedMap) Inner() *ebpf.Map { return o.m }

// RTT reports the modeled host access latency.
func (o *OffloadedMap) RTT() sim.Time { return o.rtt }

// LookupUint64 reads key from the host; done receives the value after the
// round trip.
func (o *OffloadedMap) LookupUint64(key uint32, done func(v uint64, ok bool)) {
	o.eng.After(o.rtt, func() {
		v, ok := o.m.LookupUint64(key)
		done(v, ok)
	})
}

// UpdateUint64 writes key from the host; done (optional) fires after the
// round trip.
func (o *OffloadedMap) UpdateUint64(key uint32, v uint64, done func(err error)) {
	o.eng.After(o.rtt, func() {
		err := o.m.UpdateUint64(key, v)
		if done != nil {
			done(err)
		}
	})
}
