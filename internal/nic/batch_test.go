package nic

import (
	"testing"

	"syrup/internal/ebpf"
	"syrup/internal/sim"
)

// steerAll returns an offload program steering every packet to queue 0, so
// packets carry offload latency and park on the burst ring.
func steerAll(t *testing.T) *ebpf.Program {
	t.Helper()
	p, _, err := ebpf.AssembleAndLoad("steer0", "r0 = 0\nexit\n", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBurstDrainFullRing is the S1 regression: drain a completely full
// ring at Budget > 1 with the host consuming per packet. The original
// batched drain decremented inflight by burst length up front, so the
// host's own per-packet Consumed calls underflowed the ring and panicked.
func TestBurstDrainFullRing(t *testing.T) {
	eng := sim.New(1)
	const ringSize = 64
	var got []uint64
	var dev *NIC
	dev = New(eng, Config{Queues: 1, RingSize: ringSize, Budget: 8}, nil)
	dev.SetBatchDeliver(func(q int, pkts []*Packet) {
		if len(pkts) > dev.Budget() {
			t.Fatalf("burst of %d exceeds budget %d", len(pkts), dev.Budget())
		}
		for _, pkt := range pkts {
			dev.Consumed(q)
			got = append(got, pkt.ID)
		}
	})
	dev.SetOffloadProgram(steerAll(t))

	// Fill the ring to capacity in one instant; one more must overflow.
	for i := 0; i < ringSize+1; i++ {
		dev.Receive(mkPkt(uint64(i), uint16(1000+i), nil))
	}
	if dev.Stats.DroppedRing != 1 {
		t.Fatalf("DroppedRing = %d, want 1", dev.Stats.DroppedRing)
	}
	eng.Run()

	if len(got) != ringSize {
		t.Fatalf("delivered %d of %d", len(got), ringSize)
	}
	for i, id := range got {
		if id != uint64(i) {
			t.Fatalf("delivery order broken at %d: got id %d", i, id)
		}
	}
	if dev.Inflight(0) != 0 {
		t.Fatalf("inflight = %d after full drain, want 0", dev.Inflight(0))
	}
}

// TestBurstDrainConsumesPerPacket checks that a host dropping part of a
// burst at admission (consuming the ring slot but going no further) leaves
// the ring accounting exact — the other half of S1.
func TestBurstDrainConsumesPerPacket(t *testing.T) {
	eng := sim.New(1)
	var kept int
	var dev *NIC
	dev = New(eng, Config{Queues: 1, RingSize: 16, Budget: 4}, nil)
	dev.SetBatchDeliver(func(q int, pkts []*Packet) {
		for i := range pkts {
			dev.Consumed(q) // every packet occupies exactly one ring slot
			if i%2 == 0 {
				kept++
			}
		}
	})
	dev.SetOffloadProgram(steerAll(t))
	for i := 0; i < 8; i++ {
		dev.Receive(mkPkt(uint64(i), uint16(2000+i), nil))
	}
	eng.Run()
	if dev.Inflight(0) != 0 {
		t.Fatalf("inflight = %d, want 0", dev.Inflight(0))
	}
	if kept != 4 {
		t.Fatalf("kept = %d, want 4", kept)
	}
}

// TestBurstDeliveryInstantsMatchPerPacket asserts the timestamp-
// preservation invariant at the NIC layer: every packet is handed to the
// host at exactly the instant the per-packet path would have used.
func TestBurstDeliveryInstantsMatchPerPacket(t *testing.T) {
	run := func(budget int) map[uint64]sim.Time {
		eng := sim.New(7)
		at := make(map[uint64]sim.Time)
		var dev *NIC
		deliver := func(q int, pkt *Packet) {
			dev.Consumed(q)
			at[pkt.ID] = eng.Now()
		}
		dev = New(eng, Config{Queues: 2, RingSize: 128, Budget: budget}, deliver)
		if budget > 1 {
			dev.SetBatchDeliver(func(q int, pkts []*Packet) {
				for _, pkt := range pkts {
					deliver(q, pkt)
				}
			})
		}
		p, _, err := ebpf.AssembleAndLoad("hashmod", "r0 = PASS\nexit\n", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		dev.SetOffloadProgram(p) // PASS keeps RSS but charges offload latency
		for i := 0; i < 200; i++ {
			pkt := mkPkt(uint64(i), uint16(3000+i%40), nil)
			eng.After(sim.Time(i*137), func() { dev.Receive(pkt) })
		}
		eng.Run()
		return at
	}
	ref := run(1)
	for _, budget := range []int{4, 64} {
		got := run(budget)
		if len(got) != len(ref) {
			t.Fatalf("budget %d delivered %d packets, want %d", budget, len(got), len(ref))
		}
		for id, want := range ref {
			if got[id] != want {
				t.Fatalf("budget %d: packet %d delivered at %d, want %d", budget, id, got[id], want)
			}
		}
	}
}

// TestPacketPoolRecycle covers the page_pool-style recycler: pooled
// packets recycle through Free, literal packets ignore it, and a double
// Free of a live pooled packet panics.
func TestPacketPoolRecycle(t *testing.T) {
	p := NewPacket()
	p.ID = 42
	p.Payload = append(p.HeaderBuf(), 1, 2, 3)
	if len(p.Bytes()) != 11 {
		t.Fatalf("wire length %d", len(p.Bytes()))
	}
	p.Free()

	lit := &Packet{ID: 7}
	lit.Free() // no-op, must not panic
	lit.Free()

	q := NewPacket()
	if q.ID != 0 || q.Payload != nil || len(q.Bytes()) != 8 {
		t.Fatalf("recycled packet not zeroed: %+v", q)
	}
	q.Free()

	r := NewPacket()
	r.ID = 9
	r.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("double Free of pooled packet did not panic")
		}
	}()
	r.Free()
}

// TestZeroAllocBurstDrain gates the NIC's burst hot path: with pooled
// packets and the ring warm, receiving and draining a burst allocates
// nothing.
func TestZeroAllocBurstDrain(t *testing.T) {
	eng := sim.New(1)
	var dev *NIC
	dev = New(eng, Config{Queues: 1, RingSize: 256, Budget: 8}, nil)
	dev.SetBatchDeliver(func(q int, pkts []*Packet) {
		for _, pkt := range pkts {
			dev.Consumed(q)
			pkt.Free()
		}
	})
	dev.SetOffloadProgram(steerAll(t)) // offload latency parks packets on the ring
	burst := func() {
		for i := 0; i < 8; i++ {
			pkt := NewPacket()
			pkt.ID = uint64(i)
			pkt.SrcIP, pkt.DstIP = 0x0a000001, 0x0a000002
			pkt.SrcPort, pkt.DstPort = uint16(4000+i), 9000
			dev.Receive(pkt)
		}
		eng.Run()
	}
	for i := 0; i < 64; i++ { // warm pools and ring capacity
		burst()
	}
	if avg := testing.AllocsPerRun(200, burst); avg != 0 {
		t.Fatalf("burst drain: %v allocs/op, want 0", avg)
	}
}
