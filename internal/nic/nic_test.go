package nic

import (
	"testing"

	"syrup/internal/ebpf"
	"syrup/internal/sim"
)

func mkPkt(id uint64, srcPort uint16, payload []byte) *Packet {
	return &Packet{ID: id, SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: srcPort, DstPort: 9000, Payload: payload}
}

func TestPacketBytesLayout(t *testing.T) {
	p := mkPkt(1, 0x1234, []byte{0xaa, 0xbb})
	b := p.Bytes()
	if len(b) != 10 {
		t.Fatalf("wire length %d", len(b))
	}
	if b[0] != 0x12 || b[1] != 0x34 {
		t.Fatalf("src port bytes %x %x", b[0], b[1])
	}
	if b[2] != 0x23 || b[3] != 0x28 { // 9000 = 0x2328
		t.Fatalf("dst port bytes %x %x", b[2], b[3])
	}
	if b[8] != 0xaa || b[9] != 0xbb {
		t.Fatal("payload misplaced")
	}
	// Cached: mutations persist.
	b[8] = 0xcc
	if p.Bytes()[8] != 0xcc {
		t.Fatal("wire view not cached")
	}
}

func TestRSSHashStability(t *testing.T) {
	a := mkPkt(1, 100, nil)
	b := mkPkt(2, 100, nil)
	if a.RSSHash() != b.RSSHash() {
		t.Fatal("same 5-tuple hashed differently")
	}
	c := mkPkt(3, 101, nil)
	if a.RSSHash() == c.RSSHash() {
		t.Fatal("different flows hashed identically (exceedingly unlikely)")
	}
}

func TestRSSSpreadsAcrossQueues(t *testing.T) {
	eng := sim.New(1)
	got := map[int]int{}
	dev := New(eng, Config{Queues: 4}, func(q int, pkt *Packet) { got[q]++ })
	for i := 0; i < 400; i++ {
		dev.Receive(mkPkt(uint64(i), uint16(1000+i), nil))
	}
	eng.Run()
	// Each of 400 distinct flows should land on some queue; all 4 queues
	// should see a reasonable share.
	total := 0
	for q := 0; q < 4; q++ {
		if got[q] < 50 {
			t.Fatalf("queue %d got %d of 400 flows", q, got[q])
		}
		total += got[q]
	}
	if total != 400 {
		t.Fatalf("delivered %d", total)
	}
}

func TestRingOverflowDrops(t *testing.T) {
	eng := sim.New(1)
	delivered := 0
	var dev *NIC
	dev = New(eng, Config{Queues: 1, RingSize: 8}, func(q int, pkt *Packet) { delivered++ })
	// The host never consumes: after 8 packets the ring is full.
	for i := 0; i < 20; i++ {
		dev.Receive(mkPkt(uint64(i), 100, nil))
	}
	eng.Run()
	if dev.Stats.DroppedRing != 12 {
		t.Fatalf("ring drops = %d, want 12", dev.Stats.DroppedRing)
	}
	if delivered != 8 {
		t.Fatalf("delivered = %d, want 8", delivered)
	}
	// Consuming frees space.
	for i := 0; i < 8; i++ {
		dev.Consumed(0)
	}
	dev.Receive(mkPkt(99, 100, nil))
	eng.Run()
	if delivered != 9 {
		t.Fatalf("post-consume delivery failed: %d", delivered)
	}
}

func TestOffloadProgramSteersQueues(t *testing.T) {
	eng := sim.New(1)
	var gotQueue []int
	dev := New(eng, Config{Queues: 4}, func(q int, pkt *Packet) { gotQueue = append(gotQueue, q) })
	// Steer by first payload byte (a MICA-style key-hash steering policy).
	prog := ebpf.MustLoad("steer", []ebpf.Instruction{
		ebpf.Ldx(8, ebpf.R2, ebpf.R1, ebpf.CtxOffData),
		ebpf.Ldx(8, ebpf.R3, ebpf.R1, ebpf.CtxOffDataEnd),
		ebpf.MovReg(ebpf.R4, ebpf.R2),
		ebpf.ALUImm(ebpf.ALUAdd, ebpf.R4, 9),
		ebpf.JmpReg(ebpf.JmpGt, ebpf.R4, ebpf.R3, 3),
		ebpf.Ldx(1, ebpf.R0, ebpf.R2, 8),
		ebpf.ALUImm(ebpf.ALUMod, ebpf.R0, 4),
		ebpf.Exit(),
		ebpf.MovImm(ebpf.R0, -1), // PASS
		ebpf.Exit(),
	}, ebpf.LoadOptions{})
	dev.SetOffloadProgram(prog)
	for i := 0; i < 8; i++ {
		dev.Receive(mkPkt(uint64(i), 100, []byte{byte(i)}))
	}
	eng.Run()
	if len(gotQueue) != 8 {
		t.Fatalf("delivered %d", len(gotQueue))
	}
	for i, q := range gotQueue {
		if q != i%4 {
			t.Fatalf("packet %d steered to queue %d, want %d", i, q, i%4)
		}
	}
	if dev.Stats.OffloadRuns != 8 {
		t.Fatalf("offload runs = %d", dev.Stats.OffloadRuns)
	}
}

func TestOffloadDropAndOutOfRange(t *testing.T) {
	eng := sim.New(1)
	delivered := 0
	dev := New(eng, Config{Queues: 2}, func(q int, pkt *Packet) { delivered++ })
	drop := ebpf.MustLoad("drop", []ebpf.Instruction{
		ebpf.MovImm(ebpf.R0, -2), // DROP
		ebpf.Exit(),
	}, ebpf.LoadOptions{})
	dev.SetOffloadProgram(drop)
	dev.Receive(mkPkt(1, 100, nil))
	eng.Run()
	if delivered != 0 || dev.Stats.DroppedByXDP != 1 {
		t.Fatalf("drop verdict ignored: delivered=%d drops=%d", delivered, dev.Stats.DroppedByXDP)
	}
	oob := ebpf.MustLoad("oob", []ebpf.Instruction{
		ebpf.MovImm(ebpf.R0, 99),
		ebpf.Exit(),
	}, ebpf.LoadOptions{})
	dev.SetOffloadProgram(oob)
	dev.Receive(mkPkt(2, 100, nil))
	eng.Run()
	if delivered != 0 || dev.Stats.DroppedByXDP != 2 {
		t.Fatalf("out-of-range verdict not dropped: delivered=%d", delivered)
	}
}

func TestOffloadFaultFailsOpenAndCounts(t *testing.T) {
	eng := sim.New(1)
	delivered := 0
	dev := New(eng, Config{Queues: 4}, func(q int, pkt *Packet) { delivered++ })
	// A NoVerify program that dereferences an uninitialized register: the
	// stand-in for a verifier escape hitting a runtime fault on the NIC.
	faulty, err := ebpf.Load("faulty", []ebpf.Instruction{
		ebpf.Ldx(8, ebpf.R0, ebpf.R2, 0),
		ebpf.Exit(),
	}, ebpf.LoadOptions{NoVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	dev.SetOffloadProgram(faulty)
	p := mkPkt(1, 100, nil)
	rssQueue := dev.rssTable[p.RSSHash()%uint32(len(dev.rssTable))]
	dev.Receive(p)
	eng.Run()
	// Fail open: the packet is delivered on the RSS-chosen queue...
	if delivered != 1 || p.Queue != rssQueue {
		t.Fatalf("fault did not fail open to RSS: delivered=%d queue=%d want %d", delivered, p.Queue, rssQueue)
	}
	// ...but the fault is counted, not silently read as PASS.
	if dev.Stats.OffloadFaults != 1 || dev.Stats.DroppedByXDP != 0 {
		t.Fatalf("fault accounting: %+v", dev.Stats)
	}
	if st := dev.Offload().Stats(); st.Faults != 1 {
		t.Fatalf("hook point faults = %d", st.Faults)
	}
}

func TestOffloadedMapLatency(t *testing.T) {
	eng := sim.New(1)
	dev := New(eng, Config{Queues: 1, HostMapRTT: 25 * sim.Microsecond}, func(int, *Packet) {})
	m := ebpf.MustNewMap(ebpf.MapSpec{Name: "m", Type: ebpf.MapArray, KeySize: 4, ValueSize: 8, MaxEntries: 1})
	om := dev.OffloadMap(m)
	var wroteAt, readAt sim.Time
	om.UpdateUint64(0, 42, func(err error) {
		if err != nil {
			t.Errorf("update: %v", err)
		}
		wroteAt = eng.Now()
		om.LookupUint64(0, func(v uint64, ok bool) {
			if !ok || v != 42 {
				t.Errorf("lookup got %d %v", v, ok)
			}
			readAt = eng.Now()
		})
	})
	eng.Run()
	if wroteAt != 25*sim.Microsecond || readAt != 50*sim.Microsecond {
		t.Fatalf("offloaded map RTTs: write %v read %v", wroteAt, readAt)
	}
	// NIC-side access (Inner) is immediate.
	if v, _ := om.Inner().LookupUint64(0); v != 42 {
		t.Fatal("inner map view inconsistent")
	}
}

func TestConsumedUnderflowPanics(t *testing.T) {
	eng := sim.New(1)
	dev := New(eng, Config{Queues: 1}, func(int, *Packet) {})
	defer func() {
		if recover() == nil {
			t.Fatal("Consumed on empty ring did not panic")
		}
	}()
	dev.Consumed(0)
}
