// Package syrup is the public API of the Syrup reproduction: user-defined
// scheduling across the stack (SOSP 2021). It mirrors the paper's Table-1
// API — deploy a policy file to a hook, then talk to it through Maps —
// on top of a deterministic simulated end-host (NIC, kernel network stack,
// CPUs, CFS, ghOSt).
//
// A minimal session looks like:
//
//	host := syrup.NewHost(syrup.HostConfig{NumCPUs: 6, NICQueues: 6})
//	app, _ := host.RegisterApp(1, 1000, 9000)
//	sock, idx := app.NewUDPSocket(9000, "worker-0")
//	_, _ = app.DeployPolicy(policySource, syrup.HookSocketSelect, nil)
//	m, _ := app.MapOpen("/syrup/1/rr_state")
//	v, _ := m.LookupElem(0)
//
// See the examples directory for complete programs, and internal/experiments
// for the harness that regenerates every figure and table in the paper.
package syrup

import (
	"fmt"
	"io"
	"os"

	"syrup/internal/ebpf"
	"syrup/internal/faults"
	"syrup/internal/ghost"
	"syrup/internal/hook"
	"syrup/internal/kernel"
	"syrup/internal/netstack"
	"syrup/internal/nic"
	"syrup/internal/obs"
	"syrup/internal/policy"
	"syrup/internal/sim"
	"syrup/internal/storage"
	"syrup/internal/syrupd"
	"syrup/internal/trace"
)

// Hook identifies a deployment point across the stack (paper Fig. 4).
type Hook = syrupd.Hook

// The supported hooks.
const (
	HookSocketSelect = syrupd.HookSocketSelect
	HookCPURedirect  = syrupd.HookCPURedirect
	HookXDPDrv       = syrupd.HookXDPDrv
	HookXDPSkb       = syrupd.HookXDPSkb
	HookXDPOffload   = syrupd.HookXDPOffload
	HookThreadSched  = syrupd.HookThreadSched
	HookStorage      = syrupd.HookStorage
)

// Hooks describes every registered hook point (Fig. 4 order); the README's
// hook table is generated from the same registry.
func Hooks() []hook.Info { return hook.Hooks() }

// Time is a virtual-time instant/duration in nanoseconds.
type Time = sim.Time

// Common durations.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Verdict sentinels a schedule() program may return instead of an executor
// index.
const (
	PASS = ebpf.VerdictPass
	DROP = ebpf.VerdictDrop
)

// HostConfig configures a simulated end-host.
type HostConfig struct {
	// Seed drives all simulated randomness; runs with equal seeds are
	// bit-identical. Zero means seed 1.
	Seed uint64
	// HostID identifies this host within a cluster (internal/cluster
	// derives one per member); standalone hosts keep 0.
	HostID int
	// Name labels the host in cluster reports and defaults to
	// "host-<HostID>".
	Name string
	// NumCPUs is the application core count (0 = no thread scheduler).
	NumCPUs int
	// NICQueues is the RX queue count (0 = 1).
	NICQueues int
	// Batch is the NAPI-style drain budget: how many ring-resident packets
	// one softirq event may carry through the datapath (NIC drain, hook
	// dispatch, SKB stage hops). 0 or 1 selects the per-packet legacy path;
	// any value preserves per-packet virtual timestamps, so results are
	// bit-identical across batch sizes — batching only changes wall-clock
	// cost. Explicit NIC.Budget / Stack.Batch overrides win.
	Batch int
	// NIC, Stack, and Kernel override low-level cost models; zero values
	// take the calibrated defaults.
	NIC    nic.Config
	Stack  netstack.Config
	Kernel kernel.Config
	// Trace, when set, threads the request tracer through every layer
	// (NIC, netstack, hook points, ghOSt agents) at construction.
	// Tracing is off by default; the recorder never schedules events or
	// consumes randomness, so traced runs are behavior-identical.
	Trace *trace.Recorder
	// Faults, when set, compiles the chaos plan against Seed and arms
	// every layer's injection sites (NIC ring, offload, SKB allocation,
	// eBPF helpers, socket select, ghOSt agents). The injector draws from
	// its own per-site PRNG streams and schedules no events, so hosts
	// built without a plan stay bit-identical.
	Faults *faults.Plan
	// Quarantine, when non-nil, arms syrupd's fault watchdog with the
	// given thresholds (zero fields take defaults).
	Quarantine *syrupd.QuarantineConfig
	// PolicyNoOpt deploys this host's policies at -O0, skipping the
	// optimizing middle-end (the per-host form of the SYRUP_EBPF_NOOPT
	// escape hatch, mirroring NoJIT). Results are bit-identical either
	// way; use it to bisect a suspect optimization in the field.
	PolicyNoOpt bool
	// Telemetry, when set, builds the host's time-series sampler
	// (internal/obs) and attaches it to the engine's passive sampling
	// hook: datapath gauges (softirq backlog, ring occupancy, NIC
	// inflight, runnable ghOSt threads, quarantined links) are sampled
	// every Period. The hook schedules no events and draws no
	// randomness, so runs are bit-identical with telemetry on or off
	// (gated by make obs-diff). Off by default.
	Telemetry *obs.Config
	// PolicyProfile deploys this host's policies with per-instruction
	// profiling (the per-host form of ebpf.LoadOptions.Profile;
	// SYRUP_EBPF_NOPROFILE vetoes process-wide).
	PolicyProfile bool
}

// TraceRecorder is the cross-stack span recorder (see internal/trace).
type TraceRecorder = trace.Recorder

// TraceSpan is one recorded lifecycle span.
type TraceSpan = trace.Span

// NewTraceRecorder creates an enabled recorder whose ring holds
// capacity spans (<= 0 takes the default).
func NewTraceRecorder(capacity int) *TraceRecorder { return trace.New(capacity) }

// WriteChromeTrace renders spans as Chrome trace_event JSON for
// chrome://tracing / Perfetto.
func WriteChromeTrace(w io.Writer, spans []TraceSpan) error {
	return trace.WriteChrome(w, spans)
}

// maxParallelism bounds the per-host core and queue counts; the simulator
// models end hosts, not whole racks, and a wildly large value is almost
// certainly a units mistake (e.g. passing a load figure as NumCPUs).
const maxParallelism = 4096

// Normalize validates cfg and resolves every implicit default in one
// place: the seed, the host name, the NIC queue count, and the Batch →
// NIC.Budget / Stack.Batch propagation. It is the single config seam —
// NewHost, TryNewHost, and the cluster layer all normalize through here,
// so a nonsensical config fails the same way everywhere.
func (cfg HostConfig) Normalize() (HostConfig, error) {
	switch {
	case cfg.NumCPUs < 0:
		return cfg, fmt.Errorf("syrup: NumCPUs %d is negative", cfg.NumCPUs)
	case cfg.NumCPUs > maxParallelism:
		return cfg, fmt.Errorf("syrup: NumCPUs %d exceeds the per-host maximum %d", cfg.NumCPUs, maxParallelism)
	case cfg.NICQueues < 0:
		return cfg, fmt.Errorf("syrup: NICQueues %d is negative", cfg.NICQueues)
	case cfg.NICQueues > maxParallelism:
		return cfg, fmt.Errorf("syrup: NICQueues %d exceeds the per-host maximum %d", cfg.NICQueues, maxParallelism)
	case cfg.Batch < 0:
		return cfg, fmt.Errorf("syrup: Batch %d is negative", cfg.Batch)
	case cfg.HostID < 0:
		return cfg, fmt.Errorf("syrup: HostID %d is negative", cfg.HostID)
	case cfg.NIC.Queues < 0:
		return cfg, fmt.Errorf("syrup: NIC.Queues %d is negative", cfg.NIC.Queues)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("host-%d", cfg.HostID)
	}
	if cfg.NIC.Queues == 0 {
		cfg.NIC.Queues = cfg.NICQueues
	}
	if cfg.NIC.Queues == 0 {
		cfg.NIC.Queues = 1
	}
	cfg.NICQueues = cfg.NIC.Queues
	if cfg.Batch > 1 {
		if cfg.NIC.Budget == 0 {
			cfg.NIC.Budget = cfg.Batch
		}
		if cfg.Stack.Batch == 0 {
			cfg.Stack.Batch = cfg.Batch
		}
	}
	return cfg, nil
}

// Host is a simulated end-host running syrupd.
type Host struct {
	// ID and Name carry the host's cluster identity (HostConfig.HostID /
	// HostConfig.Name); standalone hosts are host 0.
	ID   int
	Name string

	Eng     *sim.Engine
	Machine *kernel.Machine // nil when NumCPUs == 0
	NIC     *nic.NIC
	Stack   *netstack.Stack
	Daemon  *syrupd.Daemon
	// Tracer is the request tracer wired at construction (nil unless
	// HostConfig.Trace was set).
	Tracer *trace.Recorder
	// Faults is the compiled chaos injector (nil unless HostConfig.Faults
	// was set); Faults.Counts() reports per-site injections after a run.
	Faults *faults.Injector
	// Obs is the telemetry sampler wired at construction (nil unless
	// HostConfig.Telemetry was set). Register additional gauges, rates,
	// and histograms on it before the run starts; its store backs the
	// syrupd timeseries/metrics ops.
	Obs *obs.Sampler
}

// NewHost builds a host: NIC wired to the kernel network stack, CPUs under
// CFS, and a syrupd instance managing it all. It panics on an invalid
// config; TryNewHost reports the error instead.
func NewHost(cfg HostConfig) *Host {
	h, err := TryNewHost(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// TryNewHost is NewHost with the config error surfaced — the constructor
// the cluster layer and other programmatic callers use.
func TryNewHost(cfg HostConfig) (*Host, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	eng := sim.New(cfg.Seed)
	dev, stack := netstack.Wire(eng, cfg.NIC, cfg.Stack)
	var machine *kernel.Machine
	if cfg.NumCPUs > 0 {
		kcfg := cfg.Kernel
		kcfg.NumCPUs = cfg.NumCPUs
		machine = kernel.New(eng, kcfg)
	}
	h := &Host{
		ID:      cfg.HostID,
		Name:    cfg.Name,
		Eng:     eng,
		Machine: machine,
		NIC:     dev,
		Stack:   stack,
		Daemon:  syrupd.New(eng, dev, stack, machine),
		Tracer:  cfg.Trace,
	}
	if cfg.Trace != nil {
		dev.SetTracer(cfg.Trace)
		stack.SetTracer(cfg.Trace)
		h.Daemon.SetTracer(cfg.Trace)
	}
	if cfg.Faults != nil {
		h.Faults = cfg.Faults.Compile(cfg.Seed, eng.Now)
		dev.SetFaults(h.Faults)
		stack.SetFaults(h.Faults)
		h.Daemon.SetFaults(h.Faults)
	}
	if cfg.Quarantine != nil {
		h.Daemon.EnableQuarantine(*cfg.Quarantine)
	}
	if cfg.PolicyNoOpt {
		h.Daemon.SetPolicyNoOpt(true)
	}
	if cfg.PolicyProfile {
		h.Daemon.SetPolicyProfile(true)
	}
	if cfg.Telemetry != nil {
		sa := obs.NewSampler(*cfg.Telemetry)
		sa.Gauge("softirq_backlog", func() float64 { return float64(stack.SoftirqBacklog()) })
		sa.Gauge("nic_inflight", func() float64 { return float64(dev.InflightTotal()) })
		sa.Gauge("nic_ring_occupancy", func() float64 { return float64(dev.RingOccupancy()) })
		sa.Gauge("ghost_runnable", func() float64 { return float64(h.Daemon.GhostRunnable()) })
		sa.Gauge("quarantined_links", func() float64 { return float64(h.Daemon.QuarantinedCount()) })
		sa.Attach(eng)
		h.Obs = sa
		h.Daemon.SetObs(sa.Store())
	}
	return h, nil
}

// AttachStorage puts a storage device under syrupd's management so apps
// can deploy to HookStorage (the §6.1 extension of the matching
// abstraction to IO scheduling).
func (h *Host) AttachStorage(dev *storage.Device) { h.Daemon.AttachStorage(dev) }

// Run advances virtual time until the event queue drains.
func (h *Host) Run() { h.Eng.Run() }

// RunFor advances virtual time by d.
func (h *Host) RunFor(d Time) { h.Eng.RunUntil(h.Eng.Now() + d) }

// Now reports the current virtual time.
func (h *Host) Now() Time { return h.Eng.Now() }

// App is an application's handle onto syrupd: the subject of the paper's
// Table-1 API.
type App struct {
	host *Host
	id   uint32
	uid  uint32
}

// RegisterApp introduces an application (tenant) to syrupd, claiming its
// UDP ports. Ports are the isolation boundary: policies deployed by this
// app only ever see traffic for these ports.
func (h *Host) RegisterApp(id, uid uint32, ports ...uint16) (*App, error) {
	if _, err := h.Daemon.RegisterApp(id, uid, ports...); err != nil {
		return nil, err
	}
	return &App{host: h, id: id, uid: uid}, nil
}

// ID returns the application id.
func (a *App) ID() uint32 { return a.id }

// Revoke tears down every one of the app's deployments across all layers
// (Daemon.RevokeApp): each hook falls back to its default path — RSS,
// hash-based reuseport selection, LBA striping — and the app may later
// redeploy.
func (a *App) Revoke() error { return a.host.Daemon.RevokeApp(a.id) }

// Links enumerates the app's live deployments with per-deployment run and
// fault counts.
func (a *App) Links() []syrupd.LinkInfo {
	var out []syrupd.LinkInfo
	for _, l := range a.host.Daemon.Links() {
		if l.App == a.id {
			out = append(out, l)
		}
	}
	return out
}

// Deployment describes a deployed policy.
type Deployment struct {
	// Program is the verified program now running at the hook.
	Program *ebpf.Program
	// Maps are the policy's named maps, shared with earlier deployments.
	Maps map[string]*ebpf.Map
	// SourceLines is the policy file's LoC (the paper's Table-2 metric).
	SourceLines int
}

// DeployPolicy is syr_deploy_policy: compile the .syr source, verify it,
// and install it at hook. defines inject deploy-time constants (e.g.
// NUM_THREADS), overriding the file's .const defaults.
func (a *App) DeployPolicy(source string, hook Hook, defines map[string]int64) (*Deployment, error) {
	res, err := a.host.Daemon.DeployPolicy(a.id, hook, source, defines)
	if err != nil {
		return nil, err
	}
	return &Deployment{Program: res.Program, Maps: res.Maps, SourceLines: res.SourceLines}, nil
}

// DeployPolicyFile reads a .syr file from disk and deploys it.
func (a *App) DeployPolicyFile(path string, hook Hook, defines map[string]int64) (*Deployment, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return a.DeployPolicy(string(b), hook, defines)
}

// DeployBuiltin deploys one of the library policies by name (see
// BuiltinPolicies).
func (a *App) DeployBuiltin(name string, hook Hook, defines map[string]int64) (*Deployment, error) {
	res, err := a.host.Daemon.DeployBuiltin(a.id, hook, name, defines)
	if err != nil {
		return nil, err
	}
	return &Deployment{Program: res.Program, Maps: res.Maps, SourceLines: res.SourceLines}, nil
}

// DeployThreadPolicy installs a userspace thread-scheduling policy via the
// ghOSt hook: the agent takes over agentCPU, and the app's registered
// threads run on workers under pol's control.
func (a *App) DeployThreadPolicy(pol ghost.Policy, agentCPU int, workers []int, cfg ghost.Config) (*ghost.Agent, error) {
	ws := make([]kernel.CPUID, len(workers))
	for i, w := range workers {
		ws[i] = kernel.CPUID(w)
	}
	return a.host.Daemon.DeployThreadPolicy(a.id, pol, kernel.CPUID(agentCPU), ws, cfg)
}

// NewUDPSocket binds a reuseport socket on one of the app's ports and
// registers it in the port's executor table, returning its index (the
// value a Socket Select policy returns to pick it).
func (a *App) NewUDPSocket(port uint16, label string) (*netstack.Socket, int) {
	return a.host.Stack.NewUDPSocket(port, a.id, label)
}

// RegisterXSK registers an AF_XDP socket in the app's executor table for
// an RX queue and returns its index.
func (a *App) RegisterXSK(port uint16, queue int, capacity int, label string) (*netstack.Socket, int) {
	sock := netstack.NewSocket(port, a.id, capacity, label)
	idx := a.host.Stack.RegisterXSK(port, queue, sock)
	return sock, idx
}

// CreateMap creates and pins a named map for this app ahead of any policy
// deployment; later policies declaring the same name share it.
func (a *App) CreateMap(spec ebpf.MapSpec) (*Map, error) {
	m, err := a.host.Daemon.CreateMap(a.id, spec)
	if err != nil {
		return nil, err
	}
	return &Map{m: m}, nil
}

// MapOpen is syr_map_open: resolve a pinned map path under this app's
// credentials.
func (a *App) MapOpen(path string) (*Map, error) {
	m, err := a.host.Daemon.OpenMap(path, a.uid, true)
	if err != nil {
		return nil, err
	}
	return &Map{m: m}, nil
}

// Map is a handle to a Syrup Map (the cross-layer communication channel,
// §3.4). The default value type is uint64, as in the paper.
type Map struct {
	m *ebpf.Map
}

// LookupElem is syr_map_lookup_elem for the default 32-bit-key,
// 64-bit-value shape.
func (m *Map) LookupElem(key uint32) (uint64, bool) { return m.m.LookupUint64(key) }

// UpdateElem is syr_map_update_elem.
func (m *Map) UpdateElem(key uint32, value uint64) error { return m.m.UpdateUint64(key, value) }

// AddElem atomically adds delta (two's-complement for subtraction) to the
// value at key.
func (m *Map) AddElem(key uint32, delta uint64) error { return m.m.AddUint64(key, delta) }

// Raw exposes the underlying map for advanced use (byte-typed access,
// iteration, sharing with policy loads).
func (m *Map) Raw() *ebpf.Map { return m.m }

// BuiltinPolicies lists the named policies shipped with the library: the
// paper's hash, round_robin, scan_avoid, sita, token, and mica_hash.
func BuiltinPolicies() []string { return policy.Names() }

// BuiltinSource returns a built-in policy's .syr source.
func BuiltinSource(name string) (string, error) { return policy.Source(name) }
