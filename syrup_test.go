package syrup_test

import (
	"testing"

	"syrup"
)

func TestHostEndToEndRoundRobin(t *testing.T) {
	host := syrup.NewHost(syrup.HostConfig{NICQueues: 1})
	app, err := host.RegisterApp(1, 1000, 9000)
	if err != nil {
		t.Fatal(err)
	}
	var socks []*socketish
	for i := 0; i < 3; i++ {
		s, idx := app.NewUDPSocket(9000, "w")
		if idx != i {
			t.Fatalf("socket index %d", idx)
		}
		socks = append(socks, &socketish{s.Len})
	}
	if _, err := app.DeployBuiltin("round_robin", syrup.HookSocketSelect,
		map[string]int64{"NUM_THREADS": 3}); err != nil {
		t.Fatal(err)
	}
	// Inject 9 datagrams of a single flow.
	for i := 0; i < 9; i++ {
		host.NIC.Receive(testPacket(uint64(i), 9000))
	}
	host.Run()
	for i, s := range socks {
		if s.len() != 3 {
			t.Fatalf("socket %d got %d datagrams", i, s.len())
		}
	}
	// Table-1 map API.
	m, err := app.MapOpen("/syrup/1/rr_state")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m.LookupElem(0); !ok || v != 9 {
		t.Fatalf("rr counter = %d %v", v, ok)
	}
	if err := m.UpdateElem(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.AddElem(0, 5); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.LookupElem(0); v != 5 {
		t.Fatalf("after update+add: %d", v)
	}
}

func TestBuiltinPoliciesExposed(t *testing.T) {
	names := syrup.BuiltinPolicies()
	if len(names) < 6 {
		t.Fatalf("builtins: %v", names)
	}
	for _, n := range names {
		src, err := syrup.BuiltinSource(n)
		if err != nil || src == "" {
			t.Fatalf("source for %q: %v", n, err)
		}
	}
	if _, err := syrup.BuiltinSource("nope"); err == nil {
		t.Fatal("unknown builtin resolved")
	}
}

func TestHostDeterminism(t *testing.T) {
	run := func() uint64 {
		host := syrup.NewHost(syrup.HostConfig{Seed: 42, NICQueues: 2})
		app, _ := host.RegisterApp(1, 1000, 9000)
		var total uint64
		for i := 0; i < 4; i++ {
			s, _ := app.NewUDPSocket(9000, "w")
			defer func() { total += s.Enqueued }()
		}
		for i := 0; i < 100; i++ {
			host.NIC.Receive(testPacket(uint64(i), 9000))
		}
		host.Run()
		return total + uint64(host.Now())
	}
	if run() != run() {
		t.Fatal("identical seeds produced different runs")
	}
}
