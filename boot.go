package syrup

// NewHostApp builds a host and registers a single application on it — the
// skeleton every example, the syrupd command, and the experiment harness
// share: normalize + validate the config, stand the host up, and claim the
// app's ports through syrupd.
func NewHostApp(cfg HostConfig, appID, appUID uint32, ports ...uint16) (*Host, *App, error) {
	host, err := TryNewHost(cfg)
	if err != nil {
		return nil, nil, err
	}
	app, err := host.RegisterApp(appID, appUID, ports...)
	if err != nil {
		return nil, nil, err
	}
	return host, app, nil
}

// MustHostApp is NewHostApp for demos and tests: it panics on error.
func MustHostApp(cfg HostConfig, appID, appUID uint32, ports ...uint16) (*Host, *App) {
	host, app, err := NewHostApp(cfg, appID, appUID, ports...)
	if err != nil {
		panic(err)
	}
	return host, app
}
