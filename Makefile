GO ?= go

.PHONY: build test vet race lint-hooks lint-metrics trace-check alloc-gates chaos cluster-diff opt-diff obs-diff adapt-diff check bench bench-cluster bench-dispatch bench-engine bench-datapath bench-policy bench-profile fuzz clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The eBPF package carries the JIT/interpreter equivalence tests and the
# concurrency-sensitive run-state pool; the hook package's metrics counters
# are the only shared state on the run path. Exercise both under the race
# detector.
race:
	$(GO) test -race ./internal/ebpf/... ./internal/hook/...

# Layer packages must execute policies only through hook.Point.Run (fail-open
# semantics + per-point accounting); a direct (*ebpf.Program).Run call would
# bypass both. See DESIGN.md "Hook points and links".
lint-hooks:
	@if grep -rn '\.Run(&' internal/nic internal/netstack internal/storage; then \
		echo 'lint-hooks: layer packages must run programs via hook.Point.Run'; \
		exit 1; \
	fi

# The trace recorder is single-owner by design, but the metrics registry it
# feeds (counters, SnapshotDelta, histogram registration) is shared with
# protocol goroutines. Run both observability packages under the race
# detector.
trace-check:
	$(GO) test -race ./internal/trace/ ./internal/metrics/

# Zero-alloc gates (see DESIGN.md): the event-engine steady state, compiled
# eBPF dispatch, hook dispatch (single and vectorized, traced and
# untraced), the span recorder's Record path — including disabled/nil
# recorders, i.e. the tracing-off hot path — and the batched datapath
# (NIC burst drain with pooled packets, stack burst delivery end to end)
# must all stay at 0 allocs/op.
alloc-gates:
	$(GO) test -run 'TestZeroAlloc|TestCompiledRunZeroAllocs' -v ./internal/sim/ ./internal/trace/ ./internal/hook/ ./internal/ebpf/ ./internal/nic/ ./internal/netstack/ | grep -E '^(=== RUN|--- (PASS|FAIL)|FAIL|ok)'

# Chaos gate (see DESIGN.md "Fault injection and quarantine"): the
# fault-plan suite plus the syrupd quarantine/revoke tests — including the
# server ops hammered from racing goroutines — under the race detector,
# then the experiments-level fall-open and determinism gates.
chaos:
	$(GO) test -race ./internal/faults/ ./internal/syrupd/
	$(GO) test -run 'TestChaos' ./internal/experiments/

# Cluster determinism gate (see DESIGN.md "Cluster layer"): the 4-host
# LS/BE and sharded-MICA scenarios at -workers 1 vs 4 must produce
# byte-identical per-host and fleet stats digests, and the Maglev/rollout/
# escalation invariants must hold.
cluster-diff:
	$(GO) test ./internal/cluster/ ./internal/par/
	$(GO) test -run 'TestCluster' ./internal/experiments/

# Metric names must be prometheus-style snake_case: lowercase letters,
# digits, and underscores, starting with a letter. The grep matches every
# string-literal name registered on a counter, histogram, or sampler
# series and rejects anything outside that alphabet (dashes, dots,
# camelCase). See DESIGN.md "Telemetry plane".
lint-metrics:
	@bad=$$(grep -rnoE '(NewCounter|RegisterHistogram|\.Gauge|\.Rate|\.Histogram)\("[^"]*"' \
		--include='*.go' internal/ cmd/ syrup.go \
		| grep -vE '\("[a-z][a-z0-9_]*"' || true); \
	if [ -n "$$bad" ]; then \
		echo 'lint-metrics: metric names must be snake_case ([a-z][a-z0-9_]*):'; \
		echo "$$bad"; \
		exit 1; \
	fi

# Optimizer gate (see DESIGN.md "Optimizer"): the three-way differential
# (interpreter vs -O0 threaded code vs -O1 optimized) over random programs
# and the fuzz seed corpus, the text round-trip suite syrup-policy disasm
# depends on, and the figure-slice digests at -O0 vs -O1, which must be
# bit-identical per seed.
opt-diff:
	$(GO) test -run 'TestDifferential|FuzzJITMatchesInterp|TestTextRoundTrip|TestOpt' ./internal/ebpf/
	$(GO) test -run 'TestOptDifferential' ./internal/experiments/

# Telemetry gate (see DESIGN.md "Telemetry plane"): the sampler rides the
# engine's passive hook — figure-slice digests (fig2/6/8/9 + the fleet
# scenario) must be bit-identical with the sampler off vs on, the sampler
# hot path must stay zero-alloc, and the profiling suite must show
# identical hit counts across interp and JIT.
obs-diff:
	$(GO) test ./internal/obs/ ./internal/sim/
	$(GO) test -run 'TestProfile|TestAnnotatedDisasm' ./internal/ebpf/
	$(GO) test -run 'TestObsDifferential' ./internal/experiments/

# Adaptive-control gate (see DESIGN.md "Adaptive control loop"): the
# controller's detector/debounce unit suite under the race detector, the
# syrupd/cluster wiring, then the experiments-level differential — an
# armed controller whose rules never fire must leave the simulation
# bit-identical to a run without one — plus the committed demo's exact
# decision trace, its replay determinism, and the frontier domination
# over every static policy.
adapt-diff:
	$(GO) test -race ./internal/adapt/
	$(GO) test -run 'TestAdapt|TestRollout' ./internal/cluster/ ./internal/syrupd/
	$(GO) test -run 'TestAdapt' ./internal/experiments/

# check is the PR gate: build, vet, lints, race-test the VM + hooks +
# observability, alloc gates, chaos suite, cluster determinism gate,
# optimizer differential gate, telemetry gate, adaptive-control gate,
# then the full suite.
check: build vet lint-hooks lint-metrics race trace-check alloc-gates chaos cluster-diff opt-diff obs-diff adapt-diff test

bench:
	$(GO) test -bench=. -benchmem ./...

# Fleet-scale scenario: 32 hosts behind the Maglev L4 LB, >1M flows,
# token-QoS policy deployed through the control plane's staged rollout.
# Bit-identical at any -workers value; see ROADMAP.md for reference
# numbers.
bench-cluster:
	$(GO) run ./cmd/syrup-bench -hosts 32

# Interpreter-vs-compiled dispatch margin (see DESIGN.md "JIT & run-state
# pooling"): the map-heavy shape must hold >=2x and 0 allocs/op compiled.
bench-dispatch:
	$(GO) test ./internal/ebpf/ -run '^$$' -bench BenchmarkDispatch -benchmem

# Timer-wheel event-engine core (see DESIGN.md "Event engine internals"):
# steady-state schedule+fire, cancel-heavy, and ticker re-arm shapes. The
# steady state must hold >=2x over the old container/heap core with
# 0 allocs/op; the alloc floor is gated in `make check` by
# TestZeroAllocSteadyState / TestZeroAllocTicker in internal/sim.
bench-engine:
	$(GO) test ./internal/sim/ -run '^$$' -bench BenchmarkEngine -benchmem

# Batched-datapath wall-clock (see DESIGN.md "Batched datapath"): one MICA
# kernel-steering point at drain budgets 1/8/64. Results are bit-identical
# across budgets (gated by TestBatchDifferential* in `make test`); this
# target shows the wall-clock and allocation margin batching buys.
bench-datapath:
	$(GO) test ./internal/experiments/ -run '^$$' -bench BenchmarkDatapathBurst -benchmem -benchtime 2x

# Optimizer wall-clock margin (see DESIGN.md "Optimizer"): the dispatch
# benchmark shapes at -O0 vs -O1. The map-heavy shape must hold >=1.2x
# compiled-over-compiled; reference numbers live in EXPERIMENTS.md.
bench-policy:
	@echo '--- -O0 (SYRUP_EBPF_NOOPT=1)'
	SYRUP_EBPF_NOOPT=1 $(GO) test ./internal/ebpf/ -run '^$$' -bench BenchmarkDispatch -benchmem
	@echo '--- -O1 (default)'
	$(GO) test ./internal/ebpf/ -run '^$$' -bench BenchmarkDispatch -benchmem

# Profiling overhead margin (see EXPERIMENTS.md "Profiling overhead"): the
# dispatch shapes with per-instruction profiling off vs on. Profiling is
# opt-in per deployment and SYRUP_EBPF_NOPROFILE vetoes it process-wide.
bench-profile:
	$(GO) test ./internal/ebpf/ -run '^$$' -bench BenchmarkDispatchProfile -benchmem

# Extended differential fuzzing of the compiled dispatch path against the
# interpreter oracle (the seed corpus already runs under plain `go test`).
fuzz:
	$(GO) test ./internal/ebpf/ -run '^$$' -fuzz FuzzJITMatchesInterp -fuzztime 30s

clean:
	$(GO) clean ./...
