GO ?= go

.PHONY: build test vet race lint-hooks check bench bench-dispatch fuzz clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The eBPF package carries the JIT/interpreter equivalence tests and the
# concurrency-sensitive run-state pool; the hook package's metrics counters
# are the only shared state on the run path. Exercise both under the race
# detector.
race:
	$(GO) test -race ./internal/ebpf/... ./internal/hook/...

# Layer packages must execute policies only through hook.Point.Run (fail-open
# semantics + per-point accounting); a direct (*ebpf.Program).Run call would
# bypass both. See DESIGN.md "Hook points and links".
lint-hooks:
	@if grep -rn '\.Run(&' internal/nic internal/netstack internal/storage; then \
		echo 'lint-hooks: layer packages must run programs via hook.Point.Run'; \
		exit 1; \
	fi

# check is the PR gate: build, vet, lint, race-test the VM + hooks, then the
# full suite.
check: build vet lint-hooks race test

bench:
	$(GO) test -bench=. -benchmem ./...

# Interpreter-vs-compiled dispatch margin (see DESIGN.md "JIT & run-state
# pooling"): the map-heavy shape must hold >=2x and 0 allocs/op compiled.
bench-dispatch:
	$(GO) test ./internal/ebpf/ -run '^$$' -bench BenchmarkDispatch -benchmem

# Extended differential fuzzing of the compiled dispatch path against the
# interpreter oracle (the seed corpus already runs under plain `go test`).
fuzz:
	$(GO) test ./internal/ebpf/ -run '^$$' -fuzz FuzzJITMatchesInterp -fuzztime 30s

clean:
	$(GO) clean ./...
