GO ?= go

.PHONY: build test vet race check bench bench-dispatch fuzz clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The eBPF package carries the JIT/interpreter equivalence tests and the
# concurrency-sensitive run-state pool; always exercise it under the race
# detector.
race:
	$(GO) test -race ./internal/ebpf/...

# check is the PR gate: build, vet, race-test the VM, then the full suite.
check: build vet race test

bench:
	$(GO) test -bench=. -benchmem ./...

# Interpreter-vs-compiled dispatch margin (see DESIGN.md "JIT & run-state
# pooling"): the map-heavy shape must hold >=2x and 0 allocs/op compiled.
bench-dispatch:
	$(GO) test ./internal/ebpf/ -run '^$$' -bench BenchmarkDispatch -benchmem

# Extended differential fuzzing of the compiled dispatch path against the
# interpreter oracle (the seed corpus already runs under plain `go test`).
fuzz:
	$(GO) test ./internal/ebpf/ -run '^$$' -fuzz FuzzJITMatchesInterp -fuzztime 30s

clean:
	$(GO) clean ./...
