package syrup_test

// One benchmark per table and figure in the paper's evaluation (§5). Each
// benchmark regenerates its experiment on the simulated host and prints
// the same rows/series the paper plots; the key scalar (a reference tail
// latency or crossover load) is also reported as a benchmark metric so
// regressions show up in numeric output.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// A full pass simulates tens of millions of requests; expect a few
// minutes. The syrup-bench command exposes the same experiments with
// adjustable fidelity.

import (
	"fmt"
	"sync"
	"testing"

	"syrup/internal/experiments"
)

// printOnce avoids duplicating the tables when the benchmark harness
// re-runs a function to settle timing.
var printOnce sync.Map

func printResult(name, formatted string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Println(formatted)
	}
}

// benchPoints trims load grids so the full suite stays in CI-friendly
// territory while covering each figure's knees.
const benchPoints = 6

func trim(loads []float64, n int) []float64 {
	if n >= len(loads) {
		return loads
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = loads[i*(len(loads)-1)/(n-1)]
	}
	return out
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig2()
		cfg.Loads = trim(cfg.Loads, benchPoints)
		cfg.Seeds = 3
		res := experiments.Fig2(cfg)
		printResult("fig2", res.Format())
		// Headline: round robin's p99 at 400K RPS stays low while vanilla
		// has collapsed (the paper's 80%-more-load claim).
		b.ReportMetric(res.Col("Round Robin", 400000, "p99_us"), "rr_p99us@400K")
		b.ReportMetric(res.Col("Vanilla Linux", 400000, "p99_us"), "vanilla_p99us@400K")
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig6()
		cfg.Loads = trim(cfg.Loads, benchPoints)
		cfg.Seeds = 2
		res := experiments.Fig6(cfg)
		printResult("fig6", res.Format())
		b.ReportMetric(res.Col("SCAN Avoid", 160000, "p99_us"), "scanavoid_p99us@160K")
		b.ReportMetric(res.Col("SITA", 320000, "p99_us"), "sita_p99us@320K")
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig7()
		res := experiments.Fig7(cfg)
		printResult("fig7", res.Format())
		b.ReportMetric(res.Col("Token-based", 150000, "ls_p99_us"), "token_ls_p99us@150K")
		b.ReportMetric(res.Col("Round Robin", 150000, "ls_p99_us"), "rr_ls_p99us@150K")
		b.ReportMetric(res.Col("Token-based", 150000, "be_tput_rps"), "token_be_tput@150K")
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig8()
		cfg.Loads = trim(cfg.Loads, benchPoints)
		res := experiments.Fig8(cfg)
		printResult("fig8", res.Format())
		b.ReportMetric(res.Col("SCAN Avoid + Thread Scheduling", 8000, "get_p99_us"), "combined_get_p99us@8K")
		b.ReportMetric(res.Col("SCAN Avoid", 8000, "get_p99_us"), "scanavoid_get_p99us@8K")
		b.ReportMetric(res.Col("Thread Scheduling", 2000, "get_p99_us"), "threadsched_get_p99us@2K")
	}
}

func BenchmarkFig9a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig9a()
		cfg.Loads = trim(cfg.Loads, benchPoints)
		res := experiments.Fig9(cfg)
		printResult("fig9a", res.Format())
		b.ReportMetric(res.Col("SW Redirect (Original MICA)", 2000000, "p999_us"), "redirect_p999us@2M")
		b.ReportMetric(res.Col("Syrup SW (Kernel)", 2000000, "p999_us"), "sw_p999us@2M")
		b.ReportMetric(res.Col("Syrup HW (NIC)", 2500000, "p999_us"), "hw_p999us@2.5M")
	}
}

func BenchmarkFig9b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig9b()
		cfg.Loads = trim(cfg.Loads, benchPoints)
		res := experiments.Fig9(cfg)
		printResult("fig9b", res.Format())
		b.ReportMetric(res.Col("Syrup SW (Kernel)", 2000000, "p999_us"), "sw_p999us@2M")
		b.ReportMetric(res.Col("Syrup HW (NIC)", 2500000, "p999_us"), "hw_p999us@2.5M")
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		printResult("table2", experiments.FormatTable2(rows))
		for _, r := range rows {
			if r.Policy == "round_robin" {
				b.ReportMetric(float64(r.Instructions), "rr_insns")
				b.ReportMetric(r.WallNanos, "rr_interp_ns")
			}
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3()
		printResult("table3", experiments.FormatTable3(rows))
		for _, r := range rows {
			switch r.Backend {
			case "Host":
				b.ReportMetric(r.GetNanos, "host_get_ns")
			case "Offload":
				b.ReportMetric(r.GetNanos, "offload_get_ns")
			}
		}
	}
}
