package syrup_test

import "syrup/internal/nic"

// socketish adapts a socket's length accessor for table-driven checks.
type socketish struct {
	len func() int
}

// testPacket builds a packet with a distinct source port per id so flows
// spread under hash steering.
func testPacket(id uint64, dstPort uint16) *nic.Packet {
	return &nic.Packet{
		ID:      id,
		SrcIP:   0x0a000001,
		DstIP:   0x0a000002,
		SrcPort: uint16(40000 + id%50),
		DstPort: dstPort,
		Payload: make([]byte, 32),
	}
}
