// Command syrup-policy is the policy author's front door to the compiler
// pipeline: assemble, verify, optimize, and inspect .syr policy files the
// same way syrupd will at deploy time.
//
// Usage:
//
//	syrup-policy build   [-D NAME=VALUE ...] [-O0] [-o out.bin] <file.syr | builtin:NAME>
//	syrup-policy disasm  [-D NAME=VALUE ...] [-O0] <file.syr | builtin:NAME>
//	syrup-policy doctor  [-D NAME=VALUE ...] [-profile N] <file.syr | builtin:NAME>
//	syrup-policy scaffold [name]
//
// build compiles and verifies, printing a summary (and with -o the
// optimized bytecode in the classic 8-byte wire format). disasm prints
// the executed stream rendered back to assemblable .syr source — the
// output re-assembles to bit-identical bytecode (gated by the round-trip
// tests). doctor runs the optimizing middle-end and prints the per-pass
// instruction deltas plus the verifier fact justifying each elision; with
// -profile N it additionally executes N deterministic synthetic packets
// under per-instruction profiling and prints the hotness-annotated
// disassembly. scaffold prints a commented starter policy to build from.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"syrup/internal/ebpf"
	"syrup/internal/policy"
)

type defineFlags map[string]int64

func (d defineFlags) String() string { return "" }
func (d defineFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("define %q not in NAME=VALUE form", s)
	}
	v, err := strconv.ParseInt(val, 0, 64)
	if err != nil {
		return err
	}
	d[name] = v
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: syrup-policy <command> [flags] <file.syr | builtin:NAME>

commands:
  build     assemble, verify, and optimize; print a summary (-o writes bytecode)
  disasm    print the executed stream as re-assemblable .syr source
  doctor    print per-pass optimizer deltas and the fact behind each elision
  scaffold  print a starter policy template

flags (build/disasm/doctor):
  -D NAME=VALUE   deploy-time define (repeatable)
  -O0             load with the optimizing middle-end off (build/disasm)
  -o file         write the loaded bytecode in wire format (build)
  -profile N      run N synthetic packets and print hotness-annotated disasm (doctor)`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "syrup-policy:", err)
	os.Exit(1)
}

// source resolves a file path or builtin:NAME argument.
func source(arg string) (name, src string) {
	if builtin, ok := strings.CutPrefix(arg, "builtin:"); ok {
		s, err := policy.Source(builtin)
		if err != nil {
			fatal(err)
		}
		return builtin, s
	}
	b, err := os.ReadFile(arg)
	if err != nil {
		fatal(err)
	}
	return arg, string(b)
}

// load runs the full deploy-time pipeline on one source.
func load(name, src string, defines map[string]int64, noOpt, profile bool) (*ebpf.AsmFile, *ebpf.Program) {
	f, err := ebpf.Assemble(src, defines)
	if err != nil {
		fatal(fmt.Errorf("assemble: %w", err))
	}
	insns, _, table, err := f.Instantiate(nil)
	if err != nil {
		fatal(err)
	}
	prog, err := ebpf.Load(name, insns, ebpf.LoadOptions{MapTable: table, NoOpt: noOpt, Profile: profile})
	if err != nil {
		fatal(err)
	}
	return f, prog
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]

	fs := flag.NewFlagSet("syrup-policy "+cmd, flag.ExitOnError)
	defines := defineFlags{}
	fs.Var(defines, "D", "deploy-time define NAME=VALUE (repeatable)")
	noOpt := fs.Bool("O0", false, "load with the optimizing middle-end off")
	out := fs.String("o", "", "write the loaded bytecode in wire format to `file` (build)")
	profile := fs.Int("profile", 0, "doctor: run `n` deterministic synthetic packets with per-instruction profiling and print the hotness-annotated disassembly (0 = off)")

	switch cmd {
	case "build", "disasm", "doctor":
		fs.Parse(args)
		if fs.NArg() != 1 {
			usage()
		}
		name, src := source(fs.Arg(0))
		switch cmd {
		case "build":
			runBuild(name, src, defines, *noOpt, *out)
		case "disasm":
			runDisasm(name, src, defines, *noOpt)
		case "doctor":
			runDoctor(name, src, defines)
			if *profile > 0 {
				fmt.Println()
				runProfile(os.Stdout, name, src, defines, *profile)
			}
		}
	case "scaffold":
		fs.Parse(args)
		name := "my_policy"
		if fs.NArg() > 0 {
			name = fs.Arg(0)
		}
		fmt.Print(scaffold(name))
	default:
		usage()
	}
}

func runBuild(name, src string, defines map[string]int64, noOpt bool, out string) {
	f, prog := load(name, src, defines, noOpt, false)
	level := "-O1"
	if !prog.Optimized() {
		level = "-O0"
	}
	fmt.Printf("%s: %d source lines, %d -> %d instructions (%s), %d map(s) — verified\n",
		name, f.SourceLines, prog.OrigLen(), prog.Len(), level, len(f.Maps))
	for _, spec := range f.Maps {
		fmt.Printf("  map %-16s %-10s key=%d value=%d entries=%d\n",
			spec.Name, spec.Type, spec.KeySize, spec.ValueSize, spec.MaxEntries)
	}
	if out != "" {
		insns, _, _, err := f.Instantiate(nil)
		if err != nil {
			fatal(err)
		}
		// Write the stream as assembled (pre-load): map references keep
		// their pseudo-fd form so the bytes are loadable elsewhere.
		if err := os.WriteFile(out, ebpf.Encode(insns), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("  wrote %d bytes to %s\n", 8*len(insns), out)
	}
}

func runDisasm(name, src string, defines map[string]int64, noOpt bool) {
	_, prog := load(name, src, defines, noOpt, false)
	fmt.Print(prog.TextSource())
}

func runDoctor(name, src string, defines map[string]int64) {
	_, prog := load(name, src, defines, false, false)
	rep := prog.OptReport()
	if rep == nil {
		fmt.Printf("%s: optimizer did not run (disabled or rejected); program runs the verified original\n", name)
		return
	}
	fmt.Printf("%s:\n%s", name, rep)
	if !prog.Optimized() {
		fmt.Println("(no pass changed the stream; the verified original is executed)")
	}
}

// runProfile loads the policy with per-instruction profiling, drives it
// with a deterministic synthetic packet mix (GET/SCAN/PUT cycling over
// flows, queues, and users — the same header layout the scaffold
// documents), and prints the hotness-annotated disassembly.
func runProfile(w io.Writer, name, src string, defines map[string]int64, runs int) {
	_, prog := load(name, src, defines, false, true)
	if !prog.Profiling() {
		fmt.Fprintf(w, "%s: profiling vetoed (%s is set)\n", name, ebpf.EnvNoProfile)
		return
	}
	types := []uint64{policy.ReqGET, policy.ReqSCAN, policy.ReqPUT}
	faults := 0
	for i := 0; i < runs; i++ {
		keyHash := uint32(i) * 2654435761
		payload := policy.EncodeHeader(types[i%len(types)], uint32(i%4), keyHash, uint64(i))
		wire := make([]byte, 8+len(payload)) // 8-byte UDP header, then the app header
		copy(wire[8:], payload)
		ctx := &ebpf.Ctx{Packet: wire, Hash: keyHash, Port: 9000, Queue: uint32(i % 4)}
		if _, _, err := prog.Run(ctx, nil); err != nil {
			faults++
		}
	}
	fmt.Fprint(w, prog.AnnotatedDisasm())
	if faults > 0 {
		fmt.Fprintf(w, "; %d of %d synthetic runs faulted\n", faults, runs)
	}
}

func scaffold(name string) string {
	return fmt.Sprintf(`; %s: schedule() policy for syrupd.
;
; The context at r1 holds two pointers:
;   *(u64 *)(r1 + 0)   pkt_start (first byte of the UDP header)
;   *(u64 *)(r1 + 8)   pkt_end   (one past the last byte)
; Return an executor index in r0, or PASS/DROP.
;
; Deploy-time parameters arrive as defines and override .const defaults.
.const NUM_EXECUTORS 6
.map %s_state array 4 8 64    ; name type key_size value_size entries

  r6 = *(u64 *)(r1 + 0)        ; pkt_start
  r7 = *(u64 *)(r1 + 8)        ; pkt_end
  r2 = r6
  r2 += 16                     ; udp header + request type
  if r2 > r7 goto pass         ; every packet read needs a bounds proof
  r8 = *(u64 *)(r6 + 8)        ; request type (see policy.EncodeHeader)

  *(u32 *)(r10 - 4) = 0        ; map key on the stack
  r1 = map(%s_state)
  r2 = r10
  r2 += -4
  call map_lookup_elem
  if r0 == 0 goto pass         ; array lookups can still miss when out of range
  r3 = *(u64 *)(r0 + 0)

  r0 = r8
  r0 %%= NUM_EXECUTORS
  exit
pass:
  r0 = PASS
  exit
`, name, name, name)
}
