package main

import (
	"strings"
	"testing"

	"syrup/internal/policy"
)

// TestRunProfileAnnotates: doctor -profile executes the policy under
// per-instruction profiling and the annotated disassembly reflects the
// synthetic run count.
func TestRunProfileAnnotates(t *testing.T) {
	src, err := policy.Source(policy.NameRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	runProfile(&b, "round_robin", src, nil, 500)
	out := b.String()
	if !strings.Contains(out, "round_robin: 500 runs") {
		t.Fatalf("missing run count header:\n%s", out)
	}
	if !strings.Contains(out, "100.0%") {
		t.Fatalf("no instruction annotated as hottest:\n%s", out)
	}
	if strings.Contains(out, "runs faulted") {
		t.Fatalf("synthetic packets faulted the policy:\n%s", out)
	}
}

// TestRunProfileDeterministic: the same source and run count produce
// byte-identical annotated output (the synthetic mix draws nothing from
// wall clock or global state). Wall-ns timing is excluded — only the hit
// counters and percentages are compared.
func TestRunProfileDeterministic(t *testing.T) {
	src, err := policy.Source(policy.NameRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	strip := func(s string) string {
		// Drop the header line (carries ns/run wall timing); hit lines are
		// deterministic.
		lines := strings.SplitN(s, "\n", 2)
		if len(lines) == 2 {
			return lines[1]
		}
		return s
	}
	var a, b strings.Builder
	runProfile(&a, "round_robin", src, nil, 200)
	runProfile(&b, "round_robin", src, nil, 200)
	if strip(a.String()) != strip(b.String()) {
		t.Fatalf("profile output not deterministic:\n--- a\n%s--- b\n%s", a.String(), b.String())
	}
}
