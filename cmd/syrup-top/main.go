// Command syrup-top renders a fleet's telemetry as a top(1)-style text
// dashboard: one row per host (RPS, latency percentiles, drop rate,
// quarantined deployments, an RPS sparkline), the fleet-merged totals,
// SLO burn-rate state, the top-K hottest deployed policies by profiled
// wall time, and — when a host runs the adapt controller — its decision
// log as per-host annotations.
//
// Live mode scrapes syrupd control sockets through the timeseries and
// profile ops:
//
//	syrup-top -sockets /tmp/h0.sock,/tmp/h1.sock,/tmp/h2.sock,/tmp/h3.sock
//
// Recorded mode renders a cluster.FleetSnapshot JSON file (written by
// -record, or by any embedding of the cluster scraper):
//
//	syrup-top -snapshot fleet.json
//
// SLO objectives are declared as name:series[/denom]:target:budget, e.g.
//
//	syrup-top -snapshot fleet.json -slo ls_p99:latency_LS_p99_us:500:0.1 \
//	    -slo drops:drop_rate/rps:0.01:0.1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"syrup/internal/cluster"
	"syrup/internal/obs"
	"syrup/internal/sim"
	"syrup/internal/syrupd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "syrup-top:", err)
		os.Exit(1)
	}
}

// sloFlags collects repeated -slo values.
type sloFlags []obs.SLO

func (s *sloFlags) String() string { return fmt.Sprintf("%d objectives", len(*s)) }

// Set parses name:series[/denom]:target:budget.
func (s *sloFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) != 4 {
		return fmt.Errorf("want name:series[/denom]:target:budget, got %q", v)
	}
	o := obs.SLO{Name: parts[0], Series: parts[1]}
	if num, den, ok := strings.Cut(parts[1], "/"); ok {
		o.Series, o.Denom = num, den
	}
	var err error
	if o.Target, err = strconv.ParseFloat(parts[2], 64); err != nil {
		return fmt.Errorf("bad target in %q: %v", v, err)
	}
	if o.Budget, err = strconv.ParseFloat(parts[3], 64); err != nil {
		return fmt.Errorf("bad budget in %q: %v", v, err)
	}
	*s = append(*s, o)
	return nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("syrup-top", flag.ContinueOnError)
	sockets := fs.String("sockets", "", "comma-separated syrupd control sockets to scrape live")
	snapshot := fs.String("snapshot", "", "recorded FleetSnapshot JSON file to render instead of scraping")
	record := fs.String("record", "", "write the scraped snapshot to this file (live mode)")
	topK := fs.Int("k", 5, "hot-policy rows to show")
	sparkW := fs.Int("spark", 24, "sparkline width in samples")
	sloShort := fs.Int("slo-short-ms", 5, "short burn-rate window (virtual ms)")
	sloLong := fs.Int("slo-long-ms", 25, "long burn-rate window (virtual ms)")
	var slos sloFlags
	fs.Var(&slos, "slo", "SLO objective name:series[/denom]:target:budget (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var snap *cluster.FleetSnapshot
	switch {
	case *snapshot != "":
		blob, err := os.ReadFile(*snapshot)
		if err != nil {
			return err
		}
		snap = &cluster.FleetSnapshot{}
		if err := json.Unmarshal(blob, snap); err != nil {
			return fmt.Errorf("%s: %v", *snapshot, err)
		}
	case *sockets != "":
		var err error
		if snap, err = scrape(strings.Split(*sockets, ",")); err != nil {
			return err
		}
		if *record != "" {
			blob, err := json.MarshalIndent(snap, "", " ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*record, blob, 0o644); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("need -sockets or -snapshot (see -h)")
	}

	for i := range slos {
		if slos[i].Short == 0 {
			slos[i].Short = sim.Time(*sloShort) * sim.Millisecond
		}
		if slos[i].Long == 0 {
			slos[i].Long = sim.Time(*sloLong) * sim.Millisecond
		}
	}
	if len(slos) > 0 {
		snap.EvaluateSLOs(slos)
	}
	render(out, snap, *topK, *sparkW)
	return nil
}

// scrape pulls every socket's timeseries and profile ops and merges the
// fleet view — the external-collector form of cluster.(*Cluster).Scrape.
func scrape(paths []string) (*cluster.FleetSnapshot, error) {
	snap := &cluster.FleetSnapshot{}
	series := make([][]obs.SeriesJSON, 0, len(paths))
	for i, path := range paths {
		path = strings.TrimSpace(path)
		c, err := syrupd.Dial(path)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		ts, err := c.Do(&syrupd.Request{Op: "timeseries"})
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		hs := cluster.HostSnapshot{
			Host:  strings.TrimSuffix(filepath.Base(path), ".sock"),
			Index: i, NowNS: ts.NowNS, Series: ts.Series,
		}
		if pr, err := c.Do(&syrupd.Request{Op: "profile"}); err == nil {
			hs.Profiles = pr.Profiles
		}
		// Hosts without adaptive control answer with an error; that just
		// leaves the annotations empty.
		if ah, err := c.Do(&syrupd.Request{Op: "adapt_history"}); err == nil {
			hs.Decisions = ah.Decisions
		}
		c.Close()
		snap.Hosts = append(snap.Hosts, hs)
		series = append(series, hs.Series)
		if hs.NowNS > snap.NowNS {
			snap.NowNS = hs.NowNS
		}
	}
	snap.Merged = obs.MergeSeries(series...)
	return snap, nil
}

// last returns the final value of the named series, or 0.
func last(series []obs.SeriesJSON, name string) float64 {
	for _, s := range series {
		if s.Name == name {
			if _, v, ok := obs.LastPoint(s); ok {
				return v
			}
		}
	}
	return 0
}

// lastMax returns the max final value across series matching the suffix
// (e.g. the worst per-class p99 on a host).
func lastMax(series []obs.SeriesJSON, suffix string) float64 {
	out := 0.0
	for _, s := range series {
		if !strings.HasSuffix(s.Name, suffix) {
			continue
		}
		if _, v, ok := obs.LastPoint(s); ok && v > out {
			out = v
		}
	}
	return out
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders the tail of a value series as unicode block bars,
// scaled to the window's min..max.
func sparkline(series []obs.SeriesJSON, name string, width int) string {
	var v []float64
	for _, s := range series {
		if s.Name == name {
			v = s.V
			break
		}
	}
	if len(v) == 0 || width <= 0 {
		return ""
	}
	if len(v) > width {
		v = v[len(v)-width:]
	}
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	var b strings.Builder
	for _, x := range v {
		i := 0
		if hi > lo {
			i = int((x - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

func render(out io.Writer, snap *cluster.FleetSnapshot, topK, sparkW int) {
	fmt.Fprintf(out, "fleet @ %.1fms virtual, %d hosts\n\n", float64(snap.NowNS)/1e6, len(snap.Hosts))
	fmt.Fprintf(out, "%10s %10s %9s %9s %10s %5s  %s\n",
		"host", "rps", "p50_us", "p99_us", "drops_ps", "quar", "rps trend")
	row := func(name string, series []obs.SeriesJSON) {
		fmt.Fprintf(out, "%10s %10.0f %9.1f %9.1f %10.0f %5.0f  %s\n",
			name,
			last(series, "rps"),
			lastMax(series, "_p50_us"),
			lastMax(series, "_p99_us"),
			last(series, "drop_rate"),
			last(series, "quarantined_links"),
			sparkline(series, "rps", sparkW))
	}
	for _, hs := range snap.Hosts {
		row(hs.Host, hs.Series)
	}
	row("FLEET", snap.Merged)

	if len(snap.SLOs) > 0 {
		fmt.Fprintf(out, "\nSLOs\n")
		for _, r := range snap.SLOs {
			fmt.Fprintf(out, "  %s\n", r)
		}
	}

	hot := hotPolicies(snap)
	if len(hot) > topK {
		hot = hot[:topK]
	}
	if len(hot) > 0 {
		fmt.Fprintf(out, "\nhot policies (by profiled ns)\n")
		fmt.Fprintf(out, "%10s %4s %-14s %-14s %10s %9s %7s\n",
			"host", "app", "hook", "program", "runs", "ns/run", "hot_pc")
		for _, h := range hot {
			pc := "-"
			if i := hotPC(h.Hits); i >= 0 {
				pc = strconv.Itoa(i)
			}
			fmt.Fprintf(out, "%10s %4d %-14s %-14s %10d %9.1f %7s\n",
				h.host, h.App, h.Hook, h.Program, h.Runs, h.NsPerRun, pc)
		}
	}

	annotated := false
	for _, hs := range snap.Hosts {
		if len(hs.Decisions) == 0 {
			continue
		}
		if !annotated {
			fmt.Fprintf(out, "\ncontroller decisions\n")
			annotated = true
		}
		for _, d := range hs.Decisions {
			fmt.Fprintf(out, "%10s %s\n", hs.Host, d)
		}
	}
}

// hotRow is one profiled deployment tagged with its host.
type hotRow struct {
	host string
	syrupd.ProfileInfo
}

// hotPolicies flattens every host's profiles and orders them hottest
// first (total profiled nanos, then runs, then name for determinism).
func hotPolicies(snap *cluster.FleetSnapshot) []hotRow {
	var rows []hotRow
	for _, hs := range snap.Hosts {
		for _, p := range hs.Profiles {
			rows = append(rows, hotRow{host: hs.Host, ProfileInfo: p})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Nanos != rows[j].Nanos {
			return rows[i].Nanos > rows[j].Nanos
		}
		if rows[i].Runs != rows[j].Runs {
			return rows[i].Runs > rows[j].Runs
		}
		if rows[i].host != rows[j].host {
			return rows[i].host < rows[j].host
		}
		return rows[i].Program < rows[j].Program
	})
	return rows
}

// hotPC is the hottest instruction slot (argmax of the hit counters),
// or -1 when the profile recorded no per-slot hits — a deployment that
// was profiled but never ran has an empty counter array, not slot 0.
func hotPC(hits []uint64) int {
	if len(hits) == 0 {
		return -1
	}
	pc := 0
	for i, h := range hits {
		if h > hits[pc] {
			pc = i
		}
	}
	return pc
}
