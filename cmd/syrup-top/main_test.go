package main

import (
	"path/filepath"
	"strings"
	"testing"

	"syrup"
	"syrup/internal/cluster"
	"syrup/internal/obs"
	"syrup/internal/sim"
	"syrup/internal/syrupd"
)

// TestRenderRecordedSnapshot: the deterministic path — a committed
// 4-host FleetSnapshot renders the per-host table, fleet row, SLO burn
// state, and the hot-policy ranking.
func TestRenderRecordedSnapshot(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-snapshot", filepath.Join("testdata", "fleet.json"),
		"-slo", "ls_p99:latency_LS_p99_us:500:0.5",
		"-slo", "drops:drop_rate/rps:0.5:0.5",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()

	if !strings.Contains(out, "fleet @ 10.0ms virtual, 4 hosts") {
		t.Fatalf("missing fleet header:\n%s", out)
	}
	for _, host := range []string{"host-00", "host-01", "host-02", "host-03"} {
		if !strings.Contains(out, host) {
			t.Fatalf("missing row for %s:\n%s", host, out)
		}
	}
	// FLEET row: summed rps, max p99, summed drop rate, max quarantine.
	fleetRow := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "FLEET") {
			fleetRow = line
		}
	}
	for _, want := range []string{"50000", "900.0", "130.0", "60", "1"} {
		if !strings.Contains(fleetRow, want) {
			t.Fatalf("FLEET row %q missing %q", fleetRow, want)
		}
	}
	// The linear rps ramp renders as a rising sparkline.
	if !strings.Contains(out, "▁▂▄▆█") {
		t.Fatalf("missing rps sparkline:\n%s", out)
	}
	// Every merged p99 sample (900µs) violates the 500µs target: burn =
	// (1/0.5) = 2x on both windows. The drop objective stays ok.
	if !strings.Contains(out, "ls_p99 short=2.00x long=2.00x n=5 BURNING") {
		t.Fatalf("missing burning SLO line:\n%s", out)
	}
	if !strings.Contains(out, "drops short=0.00x long=0.00x n=5 ok") {
		t.Fatalf("missing healthy SLO line:\n%s", out)
	}
	// Hot policies ranked by profiled nanos: sita (900µs) above
	// scan_avoid (250µs); sita's hottest slot is pc 0 (argmax tie→first).
	si := strings.Index(out, "sita")
	sa := strings.Index(out, "scan_avoid")
	if si < 0 || sa < 0 || si > sa {
		t.Fatalf("hot-policy ranking wrong (sita@%d scan_avoid@%d):\n%s", si, sa, out)
	}
}

// TestRenderHostileSnapshot: a fresh host (series registered, zero
// points), a host with exactly one sample, and a torn recording (a
// timestamp with no value) must all render as rows, not panics — the
// scrape-before-first-tick case. An unrun profile (empty hit counters)
// shows "-" instead of claiming slot 0 is hot, an objective over an
// absent series reports NO-DATA instead of ok, and a host that carries
// controller decisions gets them rendered as annotations.
func TestRenderHostileSnapshot(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-snapshot", filepath.Join("testdata", "empty.json"),
		"-slo", "ls_p99:latency_LS_p99_us:500:0.5",
		"-slo", "fresh:no_such_series:1:0.5",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"fleet @ 2.0ms virtual, 3 hosts",
		"fresh-00", "young-01", "torn-02", "FLEET",
		"ls_p99 short=0.00x long=0.00x n=1 ok",
		"fresh short=0.00x long=0.00x n=0 NO-DATA",
		"controller decisions",
		"ls_burn    fire     swap app=1 socket_select -> shed (short=2.10x)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The idle profile renders a "-" hot_pc, right-aligned in its column.
	if !strings.Contains(out, " 0.0       -") {
		t.Errorf("idle profile should render hot_pc '-':\n%s", out)
	}
	// One sample renders a one-bar sparkline on the young host's table
	// row (its decision annotation also names the host; skip that).
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "young-01") && strings.Contains(line, "700") && !strings.HasSuffix(line, "▁") {
			t.Errorf("one-point sparkline missing on %q", line)
		}
	}
}

// TestLiveScrapeMatchesRecording: scrape a real 4-host fleet over its
// syrupd sockets, record the snapshot, and confirm the recorded render is
// byte-identical to the live one.
func TestLiveScrapeMatchesRecording(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Hosts: 4, Seed: 42, TableSize: 251,
		Tune: func(i int, cfg *syrup.HostConfig) {
			cfg.Telemetry = &obs.Config{}
			cfg.PolicyProfile = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range c.Members {
		if _, err := m.Host.RegisterApp(1, 1000, 9000); err != nil {
			t.Fatal(err)
		}
		m.Host.Stack.NewUDPSocket(9000, 1, "w0")
		m.Host.Stack.NewUDPSocket(9000, 1, "w1")
		host := m.Host
		host.Obs.Rate("rps", func() float64 { return float64(host.Stack.Stats.Processed) })
	}
	// Deploy everywhere through the control plane; the probe bake drives
	// traffic through each host so series and profiles are non-trivial.
	rep, err := c.Rollout(cluster.RolloutConfig{
		App: 1, Hook: syrup.HookSocketSelect, Source: "r0 = 1\nexit\n",
		Canaries: 4, Bake: 5 * sim.Millisecond,
	})
	if err != nil || rep.Aborted {
		t.Fatalf("rollout failed: %v %+v", err, rep)
	}

	dir := t.TempDir()
	var socks []string
	for _, m := range c.Members {
		srv := syrupd.NewServer(m.Host.Daemon)
		path := filepath.Join(dir, m.Name+".sock")
		if err := srv.ListenUnix(path); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		socks = append(socks, path)
	}

	rec := filepath.Join(dir, "fleet.json")
	var live strings.Builder
	if err := run([]string{"-sockets", strings.Join(socks, ","), "-record", rec}, &live); err != nil {
		t.Fatal(err)
	}
	var replay strings.Builder
	if err := run([]string{"-snapshot", rec}, &replay); err != nil {
		t.Fatal(err)
	}
	if live.String() != replay.String() {
		t.Fatalf("recorded render diverged from live:\n--- live\n%s--- replay\n%s", live.String(), replay.String())
	}
	out := live.String()
	if !strings.Contains(out, "4 hosts") || !strings.Contains(out, "host-03") {
		t.Fatalf("unexpected live render:\n%s", out)
	}
	// Profiling was on fleet-wide, so the hot-policy table is populated.
	if !strings.Contains(out, "hot policies") {
		t.Fatalf("no hot policies in live render:\n%s", out)
	}
}
