// Command syrup-bench regenerates the paper's tables and figures on the
// simulated host and prints them as aligned text tables.
//
// Usage:
//
//	syrup-bench [-fast] [-points N] [-seeds N] fig2|fig6|fig7|fig8|fig9a|fig9b|table2|table3|ablation-late|ablation-rfs|all
//
// It can also run a single load point with the cross-stack request tracer
// on, printing the per-stage latency breakdown and/or exporting a Chrome
// trace_event file for chrome://tracing / Perfetto:
//
//	syrup-bench -breakdown -load 150000
//	syrup-bench -trace out.json -load 150000 -scan-pct 0.5 -policy scan_avoid
//
// And it can run one chaos comparison — the same point clean and under a
// fault plan with the quarantine watchdog armed — printing the goodput
// degradation report:
//
//	syrup-bench -faults default -load 150000
//	syrup-bench -faults 'site=socket-select prob=0.3; site=nic-ring prob=0.01'
//	syrup-bench -faults @plan.txt -policy scan_avoid
//
// With -hosts it runs the fleet-scale scenario instead: N hosts behind the
// Maglev L4 load balancer, policies deployed through the cluster control
// plane's staged rollout, per-host and fleet-aggregate stats printed as a
// table. -workers bounds the simulation worker pool (results are
// bit-identical at any width):
//
//	syrup-bench -hosts 32
//	syrup-bench -hosts 32 -workers 4 -app mica -flows 2097152
//
// With -adapt it runs the closed-loop adaptive scheduling demo: the
// diurnal+burst two-tenant scenario under every static policy and under
// the adapt controller (fire on LS p99 SLO burn -> shed, clear on
// offered load -> round_robin), printing each contestant's point on the
// latency/goodput frontier plus the controller's decision log:
//
//	syrup-bench -adapt
//	syrup-bench -adapt -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"syrup/internal/ebpf"
	"syrup/internal/experiments"
	"syrup/internal/faults"
	"syrup/internal/par"
)

func main() {
	fast := flag.Bool("fast", false, "use short measurement windows (quick, noisier)")
	points := flag.Int("points", 0, "override number of load points per series")
	seeds := flag.Int("seeds", 0, "override seeds per point (fig2/fig6)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to `file`")
	memprofile := flag.String("memprofile", "", "write an allocation profile to `file` at exit")
	breakdown := flag.Bool("breakdown", false, "run one traced point and print the per-stage latency breakdown")
	traceOut := flag.String("trace", "", "run one traced point and write Chrome trace_event JSON to `file`")
	faultsPlan := flag.String("faults", "", "run one chaos comparison under this fault `plan` (inline text, @file, or \"default\") and print the degradation report")
	load := flag.Float64("load", 0, "offered RPS for -breakdown/-trace/-faults (default 150000)")
	scanPct := flag.Float64("scan-pct", 0, "percent SCAN requests for -breakdown/-trace/-faults")
	polName := flag.String("policy", "round_robin", "socket policy for -breakdown/-trace/-faults (vanilla|round_robin|scan_avoid|sita)")
	seed := flag.Uint64("seed", 1, "simulation seed for -breakdown/-trace/-faults")
	batch := flag.Int("batch", 0, "NAPI-style datapath drain budget (0/1 = per-packet; results are bit-identical across batch sizes, only wall-clock changes)")
	hosts := flag.Int("hosts", 0, "run the fleet-scale cluster scenario on N hosts behind the Maglev L4 LB")
	adaptDemo := flag.Bool("adapt", false, "run the closed-loop adaptive scheduling demo (controller vs every static policy)")
	workers := flag.Int("workers", 0, "simulation worker-pool size for sweeps and cluster runs (0 = one per CPU; results are bit-identical at any width)")
	flows := flag.Int("flows", 0, "cluster flow-pool size for -hosts (default 1048576)")
	lsFrac := flag.Float64("ls-frac", 0, "latency-sensitive load share for -hosts app=rocksdb (default 0.5)")
	clusterApp := flag.String("app", "rocksdb", "cluster scenario app for -hosts (rocksdb|mica)")
	o0 := flag.Bool("O0", false, "load policies with the optimizing middle-end off (sets "+ebpf.EnvNoOpt+"; results are bit-identical to -O1, only policy dispatch wall-clock changes)")
	o1 := flag.Bool("O1", false, "load policies through the optimizing middle-end (the default; overrides an inherited "+ebpf.EnvNoOpt+")")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: syrup-bench [flags] fig2|fig6|fig7|fig8|fig9a|fig9b|table2|table3|ablation-late|ablation-rfs|all\n")
		fmt.Fprintf(os.Stderr, "       syrup-bench [-fast] -breakdown|-trace file [-load RPS] [-scan-pct P] [-policy NAME] [-seed N]\n")
		fmt.Fprintf(os.Stderr, "       syrup-bench [-fast] -faults plan|@file|default [-load RPS] [-scan-pct P] [-policy NAME] [-seed N]\n")
		fmt.Fprintf(os.Stderr, "       syrup-bench [-fast] -hosts N [-workers W] [-app rocksdb|mica] [-flows F] [-ls-frac P] [-load RPS] [-seed N]\n")
		fmt.Fprintf(os.Stderr, "       syrup-bench -adapt [-seed N]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *o0 && *o1 {
		fmt.Fprintln(os.Stderr, "syrup-bench: -O0 and -O1 are mutually exclusive")
		os.Exit(2)
	}
	if *o0 {
		os.Setenv(ebpf.EnvNoOpt, "1")
	} else if *o1 {
		os.Setenv(ebpf.EnvNoOpt, "")
	}
	traced := *breakdown || *traceOut != ""
	single := traced || *faultsPlan != "" || *hosts > 0 || *adaptDemo
	if (flag.NArg() != 1 && !single) || (flag.NArg() != 0 && single) {
		flag.Usage()
		os.Exit(2)
	}
	if traced && *faultsPlan != "" {
		fmt.Fprintf(os.Stderr, "syrup-bench: -faults cannot be combined with -breakdown/-trace\n")
		os.Exit(2)
	}
	if *hosts > 0 && (traced || *faultsPlan != "") {
		fmt.Fprintf(os.Stderr, "syrup-bench: -hosts cannot be combined with -breakdown/-trace/-faults\n")
		os.Exit(2)
	}
	if *adaptDemo && (traced || *faultsPlan != "" || *hosts > 0) {
		fmt.Fprintf(os.Stderr, "syrup-bench: -adapt cannot be combined with -breakdown/-trace/-faults/-hosts\n")
		os.Exit(2)
	}

	windows := experiments.DefaultWindows
	if *fast {
		windows = experiments.FastWindows
	}
	experiments.SetBatch(*batch)
	experiments.SetWorkers(*workers)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	if *adaptDemo {
		cfg := experiments.DefaultAdaptive()
		seedSet := false
		flag.Visit(func(f *flag.Flag) { seedSet = seedSet || f.Name == "seed" })
		if seedSet {
			cfg.Seed = *seed
		}
		start := time.Now()
		fmt.Print(experiments.Adaptive(cfg).Format())
		fmt.Printf("\n[adaptive demo completed in %v]\n", time.Since(start).Round(time.Millisecond))
		return
	}

	if *hosts > 0 {
		cfg := experiments.ClusterConfig{
			Hosts:   *hosts,
			Workers: *workers,
			Seed:    *seed,
			App:     *clusterApp,
			Flows:   *flows,
			LSFrac:  *lsFrac,
			Windows: windows,
		}
		if *load > 0 {
			cfg.TotalLoad = *load
		}
		start := time.Now()
		run, err := experiments.RunCluster(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cluster: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(run.Format())
		fmt.Printf("\n[%d-host cluster (%d flows, %d workers) completed in %v]\n",
			*hosts, totalFlows(run), par.Resolve(*workers), time.Since(start).Round(time.Millisecond))
		return
	}

	if *faultsPlan != "" {
		plan, err := loadPlan(*faultsPlan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faults: %v\n", err)
			os.Exit(1)
		}
		cfg := experiments.ChaosConfig{
			Seed:    *seed,
			ScanPct: *scanPct,
			Policy:  experiments.SocketPolicy(*polName),
			Plan:    plan,
			Windows: windows,
		}
		if *load > 0 {
			cfg.Load = *load
		}
		start := time.Now()
		fmt.Print(experiments.RunChaos(cfg).Format())
		fmt.Printf("\n[chaos comparison completed in %v]\n", time.Since(start).Round(time.Millisecond))
		return
	}

	if traced {
		cfg := experiments.DefaultTrace()
		cfg.Windows = windows
		cfg.Seed = *seed
		cfg.ScanPct = *scanPct
		cfg.Policy = experiments.SocketPolicy(*polName)
		if *load > 0 {
			cfg.Load = *load
		}
		start := time.Now()
		tr := experiments.RunTraced(cfg)
		if *breakdown {
			fmt.Print(tr.FormatBreakdown())
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "trace: %v\n", err)
				os.Exit(1)
			}
			if err := tr.WriteChrome(f); err != nil {
				fmt.Fprintf(os.Stderr, "trace: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d spans to %s (open in chrome://tracing or Perfetto)\n",
				len(tr.Recorder.Spans()), *traceOut)
		}
		fmt.Printf("\n[traced point completed in %v]\n", time.Since(start).Round(time.Millisecond))
		return
	}

	run := func(name string) {
		start := time.Now()
		switch name {
		case "fig2":
			cfg := experiments.DefaultFig2()
			cfg.Windows = windows
			if *points > 0 {
				cfg.Loads = resize(cfg.Loads, *points)
			}
			if *seeds > 0 {
				cfg.Seeds = *seeds
			}
			fmt.Print(experiments.Fig2(cfg).Format())
		case "fig6":
			cfg := experiments.DefaultFig6()
			cfg.Windows = windows
			if *points > 0 {
				cfg.Loads = resize(cfg.Loads, *points)
			}
			if *seeds > 0 {
				cfg.Seeds = *seeds
			}
			fmt.Print(experiments.Fig6(cfg).Format())
		case "fig7":
			cfg := experiments.DefaultFig7()
			cfg.Windows = windows
			if *points > 0 {
				cfg.LSLoads = resize(cfg.LSLoads, *points)
			}
			fmt.Print(experiments.Fig7(cfg).Format())
		case "fig8":
			cfg := experiments.DefaultFig8()
			cfg.Windows = windows
			if *points > 0 {
				cfg.Loads = resize(cfg.Loads, *points)
			}
			fmt.Print(experiments.Fig8(cfg).Format())
		case "fig9a":
			cfg := experiments.DefaultFig9a()
			cfg.Windows = windows
			if *points > 0 {
				cfg.Loads = resize(cfg.Loads, *points)
			}
			fmt.Print(experiments.Fig9(cfg).Format())
		case "fig9b":
			cfg := experiments.DefaultFig9b()
			cfg.Windows = windows
			if *points > 0 {
				cfg.Loads = resize(cfg.Loads, *points)
			}
			fmt.Print(experiments.Fig9(cfg).Format())
		case "ablation-late":
			cfg := experiments.DefaultAblationLateBinding()
			cfg.Windows = windows
			if *points > 0 {
				cfg.Loads = resize(cfg.Loads, *points)
			}
			fmt.Print(experiments.AblationLateBinding(cfg).Format())
		case "ablation-rfs":
			cfg := experiments.DefaultAblationRFS()
			cfg.Windows = windows
			if *points > 0 {
				cfg.Loads = resize(cfg.Loads, *points)
			}
			fmt.Print(experiments.AblationRFS(cfg).Format())
		case "table2":
			rows, err := experiments.Table2()
			if err != nil {
				fmt.Fprintf(os.Stderr, "table2: %v\n", err)
				os.Exit(1)
			}
			fmt.Print(experiments.FormatTable2(rows))
		case "table3":
			fmt.Print(experiments.FormatTable3(experiments.Table3()))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("\n[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if flag.Arg(0) == "all" {
		for _, name := range []string{"fig2", "fig6", "fig7", "fig8", "fig9a", "fig9b", "table2", "table3", "ablation-late", "ablation-rfs"} {
			run(name)
		}
		return
	}
	run(flag.Arg(0))
}

// loadPlan resolves the -faults argument: "default" names the built-in
// mixed plan, @file reads a plan file, anything else is inline plan text.
func loadPlan(arg string) (*faults.Plan, error) {
	if arg == "default" {
		return experiments.DefaultChaosPlan(), nil
	}
	text := arg
	if strings.HasPrefix(arg, "@") {
		b, err := os.ReadFile(arg[1:])
		if err != nil {
			return nil, err
		}
		text = string(b)
	}
	return faults.ParsePlan(text)
}

// totalFlows sums the members' flow shares.
func totalFlows(run *experiments.ClusterRun) int {
	n := 0
	for _, m := range run.Members {
		n += m.Flows
	}
	return n
}

// resize picks n approximately evenly spaced entries from loads.
func resize(loads []float64, n int) []float64 {
	if n >= len(loads) || n < 2 {
		return loads
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = loads[i*(len(loads)-1)/(n-1)]
	}
	return out
}
