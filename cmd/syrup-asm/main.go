// Command syrup-asm assembles, verifies, and disassembles Syrup policy
// files (.syr). It is the offline half of syrupd's deployment pipeline:
// the same assembler and verifier run here, so a policy that passes
// syrup-asm will deploy.
//
// Usage:
//
//	syrup-asm [-D NAME=VALUE ...] [-q] <file.syr | builtin:NAME>
//	syrup-asm -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"syrup/internal/ebpf"
	"syrup/internal/policy"
)

type defineFlags map[string]int64

func (d defineFlags) String() string { return "" }
func (d defineFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("define %q not in NAME=VALUE form", s)
	}
	v, err := strconv.ParseInt(val, 0, 64)
	if err != nil {
		return err
	}
	d[name] = v
	return nil
}

func main() {
	defines := defineFlags{}
	flag.Var(defines, "D", "deploy-time define NAME=VALUE (repeatable)")
	quiet := flag.Bool("q", false, "verify only; print nothing on success")
	list := flag.Bool("list", false, "list built-in policies and exit")
	flag.Parse()

	if *list {
		for _, n := range policy.Names() {
			src := policy.MustSource(n)
			f, err := ebpf.Assemble(src, nil)
			status := "ok"
			insns := 0
			if err != nil {
				status = "BROKEN: " + err.Error()
			} else {
				insns = len(f.Insns)
			}
			fmt.Printf("%-14s %3d LoC %4d insns  %s\n", n, f.SourceLines, insns, status)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: syrup-asm [-D NAME=VALUE] [-q] <file.syr | builtin:NAME>")
		os.Exit(2)
	}

	arg := flag.Arg(0)
	var src, name string
	if builtin, ok := strings.CutPrefix(arg, "builtin:"); ok {
		s, err := policy.Source(builtin)
		if err != nil {
			fatal(err)
		}
		src, name = s, builtin
	} else {
		b, err := os.ReadFile(arg)
		if err != nil {
			fatal(err)
		}
		src, name = string(b), arg
	}

	f, err := ebpf.Assemble(src, defines)
	if err != nil {
		fatal(fmt.Errorf("assemble: %w", err))
	}
	insns, maps, table, err := f.Instantiate(nil)
	if err != nil {
		fatal(err)
	}
	prog, err := ebpf.Load(name, insns, ebpf.LoadOptions{MapTable: table})
	if err != nil {
		fatal(err)
	}
	if *quiet {
		return
	}
	fmt.Printf("; %s: %d source lines, %d instructions, %d map(s) — verified\n",
		name, f.SourceLines, prog.Len(), len(maps))
	for _, spec := range f.Maps {
		fmt.Printf(";   map %-16s %-10s key=%d value=%d entries=%d\n",
			spec.Name, spec.Type, spec.KeySize, spec.ValueSize, spec.MaxEntries)
	}
	fmt.Print(prog.Disassemble())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "syrup-asm:", err)
	os.Exit(1)
}
