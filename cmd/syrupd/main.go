// Command syrupd runs the Syrup daemon on a live simulated host with a
// demo RocksDB application and background load, serving the control
// protocol over a Unix socket. Policies can be deployed, swapped, and
// inspected while traffic flows — the paper's "applications can update or
// deploy new policies at any time" workflow (§3.1).
//
//	syrupd -socket /tmp/syrupd.sock -threads 6 -rps 250000 -scan-pct 0.5
//
// Talk to it with netcat-style JSON lines, e.g.:
//
//	{"op":"register_app","app":2,"uid":1002,"ports":[9001]}
//	{"op":"deploy","app":1,"hook":"socket_select","policy":"sita","defines":{"NUM_THREADS":6,"NT_MINUS_1":5}}
//	{"op":"stats"}
//	{"op":"map_lookup","path":"/syrup/1/rr_state","uid":1000,"key":0}
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"syrup"
	"syrup/internal/apps/rocksdb"
	"syrup/internal/ebpf"
	"syrup/internal/metrics"
	"syrup/internal/nic"
	"syrup/internal/obs"
	"syrup/internal/policy"
	"syrup/internal/sim"
	"syrup/internal/syrupd"
	"syrup/internal/workload"
)

func main() {
	socket := flag.String("socket", "/tmp/syrupd.sock", "control socket path")
	threads := flag.Int("threads", 6, "demo RocksDB server threads (= cores)")
	rps := flag.Float64("rps", 250_000, "background offered load")
	scanPct := flag.Float64("scan-pct", 0.5, "percent of requests that are SCANs")
	speed := flag.Float64("speed", 1.0, "virtual seconds simulated per wall second")
	traceCap := flag.Int("trace", 0, "enable request tracing with a span ring of this capacity (0 = off); query via the trace op")
	obsPeriodUS := flag.Int("obs-period-us", 1000, "telemetry sampling period in virtual microseconds (0 = no sampler); query via the timeseries and metrics ops")
	profile := flag.Bool("profile", false, "deploy policies with per-instruction profiling; query via the profile op")
	flag.Parse()

	var tracer *syrup.TraceRecorder
	if *traceCap > 0 {
		tracer = syrup.NewTraceRecorder(*traceCap)
	}
	var telemetry *obs.Config
	if *obsPeriodUS > 0 {
		// Counter folding: this process runs exactly one host, so the
		// process-global registry is all ours; the sampler's private
		// cursor keeps its deltas independent of the stats op's.
		telemetry = &obs.Config{Period: sim.Time(*obsPeriodUS) * sim.Microsecond, Counters: true}
	}
	host, app := syrup.MustHostApp(syrup.HostConfig{
		Seed: 1, NumCPUs: *threads, NICQueues: *threads, Trace: tracer,
		Telemetry: telemetry, PolicyProfile: *profile,
	}, 1, 1000, 9000)

	// Rolling metrics for the stats op. Registering the latency histogram
	// lets the stats op derive request_latency_{count,p50_us,p99_us,
	// p999_us} without bespoke StatsFunc keys.
	lat := metrics.NewHistogram()
	metrics.RegisterHistogram("request_latency", lat)
	var completed, offered uint64
	sent := map[uint64]sim.Time{}
	if host.Obs != nil {
		host.Obs.Rate("rps", func() float64 { return float64(completed) })
		host.Obs.Gauge("inflight", func() float64 { return float64(len(sent)) })
		host.Obs.Rate("drop_rate", func() float64 {
			return float64(host.Stack.Stats.TotalDrops() + host.NIC.Stats.DroppedRing + host.NIC.Stats.DroppedByXDP)
		})
		host.Obs.Histogram("request_latency", lat)
	}

	scanState, err := app.CreateMap(ebpf.MapSpec{
		Name: "scan_state", Type: ebpf.MapArray, KeySize: 4, ValueSize: 8, MaxEntries: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := rocksdb.NewServer(host.Eng, host.Machine, host.Stack, rocksdb.Config{
		Port: 9000, App: 1, NumThreads: *threads, PinToCores: true,
		ScanState: scanState.Raw(),
		Tracer:    tracer,
		OnComplete: func(reqID uint64, finish sim.Time) {
			if at, ok := sent[reqID]; ok {
				lat.Record(int64(finish + 5*sim.Microsecond - at))
				delete(sent, reqID)
				completed++
			}
		},
	})

	// Background open-loop load, regenerated every virtual second so the
	// daemon can run forever.
	classes := []workload.Class{
		{Name: "GET", Weight: 1 - *scanPct/100, Type: policy.ReqGET},
		{Name: "SCAN", Weight: *scanPct / 100, Type: policy.ReqSCAN},
	}
	var pump func()
	reqID := uint64(0)
	pump = func() {
		// One virtual second of Poisson arrivals at a time.
		gap := func() sim.Time {
			g := sim.Time(host.Eng.Rand().ExpFloat64() / *rps * 1e9)
			if g < 1 {
				g = 1
			}
			return g
		}
		var arrive func()
		deadline := host.Eng.Now() + sim.Second
		arrive = func() {
			if host.Eng.Now() >= deadline {
				pump()
				return
			}
			id := reqID
			reqID++
			offered++
			cls := classes[0]
			if host.Eng.Rand().Float64() < classes[1].Weight {
				cls = classes[1]
			}
			sent[id] = host.Eng.Now()
			pkt := workloadPacket(host, id, cls)
			host.Eng.After(5*sim.Microsecond, func() { host.NIC.Receive(pkt) })
			host.Eng.After(gap(), arrive)
		}
		host.Eng.After(gap(), arrive)
	}
	pump()
	srv.Start()

	server := syrupd.NewServer(host.Daemon)
	server.StatsFunc = func() map[string]float64 {
		return map[string]float64{
			"virtual_seconds": float64(host.Now()) / 1e9,
			"offered":         float64(offered),
			"completed":       float64(completed),
			"inflight":        float64(len(sent)),
			"p50_us":          float64(lat.Percentile(50)) / 1000,
			"p99_us":          float64(lat.Percentile(99)) / 1000,
			"p999_us":         float64(lat.Percentile(99.9)) / 1000,
		}
	}
	os.Remove(*socket)
	if err := server.ListenUnix(*socket); err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	defer os.Remove(*socket)
	log.Printf("syrupd: listening on %s; demo rocksdb app=1 uid=1000 port=9000 (%d threads, %.0f rps, %.1f%% scans)",
		*socket, *threads, *rps, *scanPct)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	// Simulation loop: advance virtual time in 10ms slices, paced to the
	// requested speed, interleaving with protocol handling via the big
	// lock.
	const slice = 10 * sim.Millisecond
	wallSlice := time.Duration(float64(slice) / *speed)
	ticker := time.NewTicker(wallSlice)
	defer ticker.Stop()
	for {
		select {
		case <-sigc:
			log.Printf("syrupd: shutting down at virtual %v", host.Now())
			for _, c := range metrics.CountersSorted() {
				log.Printf("syrupd: counter %s=%d", c.Name, c.Value)
			}
			return
		case <-ticker.C:
			server.Lock()
			host.RunFor(slice)
			server.Unlock()
		}
	}
}

func workloadPacket(host *syrup.Host, id uint64, cls workload.Class) *nic.Packet {
	keyHash := uint32(id * 2654435761)
	payload := policy.EncodeHeader(cls.Type, cls.UserID, keyHash, id)
	return &nic.Packet{
		ID: id, SrcIP: 0x0a000001, DstIP: 0x0a000002,
		SrcPort: uint16(1024 + id%997), DstPort: 9000,
		Payload: payload, SentAt: host.Now(),
	}
}
