module syrup

go 1.22
