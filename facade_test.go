package syrup_test

import (
	"os"
	"path/filepath"
	"testing"

	"syrup"
	"syrup/internal/ebpf"
	"syrup/internal/ghost"
	"syrup/internal/kernel"
	"syrup/internal/policy"
	"syrup/internal/sim"
)

func TestDeployPolicyFile(t *testing.T) {
	host := syrup.NewHost(syrup.HostConfig{})
	app, err := host.RegisterApp(1, 1000, 9000)
	if err != nil {
		t.Fatal(err)
	}
	app.NewUDPSocket(9000, "w")

	path := filepath.Join(t.TempDir(), "pass.syr")
	if err := os.WriteFile(path, []byte("r0 = PASS\nexit\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dep, err := app.DeployPolicyFile(path, syrup.HookSocketSelect, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Program.Len() != 2 || dep.SourceLines != 2 {
		t.Fatalf("deployment: %+v", dep)
	}
	if _, err := app.DeployPolicyFile("/does/not/exist.syr", syrup.HookSocketSelect, nil); err == nil {
		t.Fatal("missing file deployed")
	}
}

func TestDeployThreadPolicyViaFacade(t *testing.T) {
	host := syrup.NewHost(syrup.HostConfig{NumCPUs: 3})
	app, err := host.RegisterApp(1, 1000, 9000)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := app.DeployThreadPolicy(policy.FIFO{}, 2, []int{0, 1}, ghost.Config{})
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for i := 0; i < 3; i++ {
		th := host.Machine.NewThread("w", 1, host.Machine.AffinityAll(), func(th *kernel.Thread) {
			th.Exec(10*sim.Microsecond, func() { done++; th.Exit() })
		})
		if err := agent.Register(th); err != nil {
			t.Fatal(err)
		}
		th.Wake()
	}
	host.Run()
	if done != 3 {
		t.Fatalf("ghost ran %d/3 threads via facade", done)
	}
}

func TestRegisterXSKViaFacade(t *testing.T) {
	host := syrup.NewHost(syrup.HostConfig{NICQueues: 1})
	app, err := host.RegisterApp(1, 1000, 9000)
	if err != nil {
		t.Fatal(err)
	}
	sock, idx := app.RegisterXSK(9000, 0, 64, "xsk0")
	if idx != 0 || sock == nil {
		t.Fatalf("xsk registration: %v %d", sock, idx)
	}
	if _, err := app.DeployPolicy("r0 = 0\nexit\n", syrup.HookXDPDrv, nil); err != nil {
		t.Fatal(err)
	}
	host.NIC.Receive(testPacket(1, 9000))
	host.Run()
	if sock.Len() != 1 {
		t.Fatalf("xsk did not receive: %d", sock.Len())
	}
}

func TestCreateMapAndRunFor(t *testing.T) {
	host := syrup.NewHost(syrup.HostConfig{})
	app, err := host.RegisterApp(1, 1000, 9000)
	if err != nil {
		t.Fatal(err)
	}
	m, err := app.CreateMap(ebpf.MapSpec{Name: "x", Type: ebpf.MapArray, KeySize: 4, ValueSize: 8, MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.UpdateElem(1, 42); err != nil {
		t.Fatal(err)
	}
	if m.Raw() == nil {
		t.Fatal("raw accessor nil")
	}
	// Duplicate creation fails.
	if _, err := app.CreateMap(ebpf.MapSpec{Name: "x", Type: ebpf.MapArray, KeySize: 4, ValueSize: 8, MaxEntries: 2}); err == nil {
		t.Fatal("duplicate map created")
	}
	// MapOpen with the wrong uid (another app handle) fails.
	app2, err := host.RegisterApp(2, 2000, 9001)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app2.MapOpen("/syrup/1/x"); err == nil {
		t.Fatal("foreign app opened a private map")
	}
	// RunFor advances virtual time even with an empty queue.
	before := host.Now()
	host.RunFor(5 * syrup.Millisecond)
	if host.Now() != before+5*syrup.Millisecond {
		t.Fatalf("RunFor: %v -> %v", before, host.Now())
	}
	if app.ID() != 1 {
		t.Fatalf("app id = %d", app.ID())
	}
}

func TestRegisterAppErrorsViaFacade(t *testing.T) {
	host := syrup.NewHost(syrup.HostConfig{})
	if _, err := host.RegisterApp(1, 1000, 9000); err != nil {
		t.Fatal(err)
	}
	if _, err := host.RegisterApp(2, 2000, 9000); err == nil {
		t.Fatal("port conflict accepted")
	}
	// Deploy on an unverifiable policy errors through the facade.
	app, _ := host.RegisterApp(3, 3000, 9100)
	app.NewUDPSocket(9100, "w")
	unsafe := "r2 = *(u64 *)(r1 + 0)\nr0 = *(u64 *)(r2 + 0)\nexit\n"
	if _, err := app.DeployPolicy(unsafe, syrup.HookSocketSelect, nil); err == nil {
		t.Fatal("unsafe policy deployed via facade")
	}
	if _, err := app.DeployBuiltin("nope", syrup.HookSocketSelect, nil); err == nil {
		t.Fatal("unknown builtin deployed")
	}
}

func TestPolicyNoOptViaFacade(t *testing.T) {
	deploy := func(cfg syrup.HostConfig) *syrup.Deployment {
		host := syrup.NewHost(cfg)
		app, err := host.RegisterApp(1, 1000, 9000)
		if err != nil {
			t.Fatal(err)
		}
		app.NewUDPSocket(9000, "w")
		dep, err := app.DeployBuiltin("user_weight", syrup.HookSocketSelect, nil)
		if err != nil {
			t.Fatal(err)
		}
		return dep
	}
	if dep := deploy(syrup.HostConfig{}); !dep.Program.Optimized() {
		t.Fatal("default host deployed user_weight unoptimized")
	}
	dep := deploy(syrup.HostConfig{PolicyNoOpt: true})
	if dep.Program.Optimized() {
		t.Fatal("PolicyNoOpt host still optimized the policy")
	}
	// The escape hatch pins the executed stream to the verified original.
	if dep.Program.Len() != dep.Program.OrigLen() {
		t.Fatalf("unoptimized program rewrote the stream: %d != %d",
			dep.Program.Len(), dep.Program.OrigLen())
	}
}
